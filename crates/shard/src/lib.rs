//! `smp-shard` — a sharded shared mempool.
//!
//! The paper's Stratus design removes the *leader* dissemination
//! bottleneck by moving transaction data into a shared mempool, but every
//! replica still runs a single mempool instance, so one dissemination
//! pipeline remains the per-replica throughput ceiling.  Multi-instance
//! designs (Mysticeti's per-validator broadcast instances, Narwhal's
//! workers) take the next step: shard transactions across `k` independent
//! dissemination pipelines per replica.
//!
//! [`ShardedMempool`] brings that architecture to this reproduction as a
//! generic wrapper over *any* backend implementing
//! [`smp_mempool::Mempool`]:
//!
//! * a deterministic [`ShardRouter`] assigns each client transaction to
//!   one of `k` inner mempool instances by transaction-id hash,
//! * every inner instance keeps its own message namespace via the
//!   [`ShardedMsg`] envelope and its own timer namespace via an internal
//!   timer multiplexer ([`TimerMux`]),
//! * `make_payload` assembles a cross-shard proposal by draining shards
//!   round-robin under the configured byte budget
//!   ([`smp_types::MempoolConfig::max_proposal_bytes`]), emitting a
//!   [`smp_types::Payload::Sharded`] payload whose groups route back to
//!   the matching instance on the receiving side,
//! * `on_proposal` aggregates per-shard fill verdicts — the proposal is
//!   `Ready` only when *every* referenced shard is filled, and a single
//!   `ProposalReady` event is re-emitted once the last waiting shard
//!   resolves,
//! * [`smp_mempool::Mempool::stats`] rolls per-shard counters up into one
//!   [`smp_mempool::MempoolStats`].
//!
//! With `k = 1` the wrapper is a transparent pass-through: payloads,
//! message sizes, and CPU costs are identical to the unwrapped backend,
//! so a sharded run at one shard commits exactly what the unsharded
//! backend commits on the same seed.
//!
//! How the `k` pipelines are *scheduled* is the [`executor`] module's
//! job: [`SequentialExecutor`] runs them inline (deterministic default),
//! [`ParallelExecutor`] gives each shard its own worker thread with a
//! private inbox and merges outputs back in submission order — the two
//! are byte-identical on the same seed (`SystemConfig::executor` picks
//! one; `tests/conformance.rs` proves the equivalence across every
//! Table II protocol).

pub mod envelope;
pub mod executor;
pub mod mempool;
pub mod mux;
pub mod router;

pub use envelope::ShardedMsg;
pub use executor::{
    force_parallel_workers, shard_rng_seed, Executor, ParallelExecutor, SequentialExecutor,
    ShardExecutor, ShardOp, ShardOutput,
};
pub use mempool::{per_shard_config, ShardedMempool};
pub use mux::TimerMux;
pub use router::ShardRouter;
