//! Deterministic transaction-to-shard routing.

use smp_types::{Transaction, TxId};

/// Routes transactions to dissemination shards by id hash.
///
/// Every replica constructs the router with the same shard count, so the
/// assignment is globally consistent without coordination: a transaction
/// entering the system anywhere always lands in the same shard, which
/// keeps per-shard content disjoint and lets availability proofs /
/// fetches stay within one shard's pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardRouter {
            shards: shards.max(1),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a transaction id belongs to.
    ///
    /// Transaction ids are content-derived digests, but their words are
    /// remixed here so the assignment stays uniform even if the digest
    /// itself had structure (and so shard routing is independent of any
    /// other use of the id bits).
    pub fn shard_of(&self, id: &TxId) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let mut x = id.0 .0[0] ^ id.0 .0[2].rotate_left(32);
        // splitmix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % self.shards as u64) as usize
    }

    /// The shard a transaction belongs to.
    pub fn shard_of_tx(&self, tx: &Transaction) -> usize {
        self.shard_of(&tx.id)
    }

    /// Partitions a batch of transactions into per-shard groups,
    /// preserving arrival order within each shard.  Only non-empty groups
    /// are returned.
    pub fn partition(&self, txs: Vec<Transaction>) -> Vec<(usize, Vec<Transaction>)> {
        if self.shards == 1 {
            return if txs.is_empty() {
                Vec::new()
            } else {
                vec![(0, txs)]
            };
        }
        let mut groups: Vec<Vec<Transaction>> = (0..self.shards).map(|_| Vec::new()).collect();
        for tx in txs {
            let shard = self.shard_of_tx(&tx);
            groups[shard].push(tx);
        }
        groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_types::ClientId;

    fn tx(client: u32, seq: u64) -> Transaction {
        Transaction::synthetic(ClientId(client), seq, 128, 0)
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for seq in 0..100 {
            assert_eq!(r.shard_of_tx(&tx(0, seq)), 0);
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = ShardRouter::new(4);
        for seq in 0..1000 {
            let t = tx(seq as u32 % 7, seq);
            let s = r.shard_of_tx(&t);
            assert!(s < 4);
            assert_eq!(s, r.shard_of_tx(&t), "same tx must route to the same shard");
        }
    }

    #[test]
    fn partition_preserves_order_within_shards() {
        let r = ShardRouter::new(3);
        let txs: Vec<Transaction> = (0..300).map(|i| tx(1, i)).collect();
        let groups = r.partition(txs.clone());
        let total: usize = groups.iter().map(|(_, g)| g.len()).sum();
        assert_eq!(total, 300);
        for (shard, group) in &groups {
            let mut last_seq = None;
            for t in group {
                assert_eq!(r.shard_of_tx(t), *shard);
                if let Some(prev) = last_seq {
                    assert!(t.seq > prev, "arrival order must be preserved");
                }
                last_seq = Some(t.seq);
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(ShardRouter::new(0).shards(), 1);
    }
}
