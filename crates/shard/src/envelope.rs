//! The per-shard message envelope.

use smp_types::WireSize;

/// A mempool message tagged with the dissemination shard it belongs to.
///
/// Shard-`j` instances across replicas form one logical broadcast group;
/// the envelope is what routes an incoming message to the right inner
/// instance.  The shard index rides in otherwise-unused header padding of
/// the underlying transport frame, so the envelope adds no wire bytes of
/// its own — with one shard, a sharded deployment is byte-identical to an
/// unsharded one.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedMsg<M> {
    /// Index of the dissemination shard this message belongs to.
    pub shard: u16,
    /// The wrapped backend-mempool message.
    pub inner: M,
}

impl<M> ShardedMsg<M> {
    /// Wraps `inner` for `shard`.
    pub fn new(shard: u16, inner: M) -> Self {
        ShardedMsg { shard, inner }
    }
}

impl<M: WireSize> WireSize for ShardedMsg<M> {
    fn wire_size(&self) -> usize {
        self.inner.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Fake(usize);
    impl WireSize for Fake {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn envelope_is_wire_transparent() {
        let m = ShardedMsg::new(3, Fake(480));
        assert_eq!(m.wire_size(), 480);
        assert_eq!(m.shard, 3);
    }
}
