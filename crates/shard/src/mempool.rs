//! The sharded mempool wrapper.

use crate::envelope::ShardedMsg;
use crate::mux::TimerMux;
use crate::router::ShardRouter;
use rand::rngs::SmallRng;
use smp_mempool::{Effects, FillStatus, Mempool, MempoolEvent, MempoolStats, TimerTag};
use smp_types::{
    BlockId, MicroblockRef, Payload, Proposal, ReplicaId, SimTime, SystemConfig, Transaction,
    WireSize, SHARD_GROUP_TAG_BYTES,
};
use std::collections::{HashMap, HashSet, VecDeque};

/// One unit of proposable content drained from a shard, waiting to be
/// placed into a cross-shard payload.
#[derive(Clone, Debug)]
enum PayloadItem {
    /// A microblock reference from a shared-mempool backend.
    Ref(u16, MicroblockRef),
    /// An inline transaction from a native backend.
    Tx(u16, Transaction),
}

impl PayloadItem {
    fn shard(&self) -> u16 {
        match self {
            PayloadItem::Ref(s, _) | PayloadItem::Tx(s, _) => *s,
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            PayloadItem::Ref(_, r) => r.wire_size(),
            PayloadItem::Tx(_, t) => t.wire_size(),
        }
    }
}

/// A shared mempool running `k` independent dissemination pipelines.
///
/// Wraps `k` instances of any backend mempool `M`.  Client transactions
/// are routed to instances by id hash; instance `j` on this replica
/// exchanges messages only with instance `j` on its peers (the
/// [`ShardedMsg`] envelope carries the index).  Proposals assembled by
/// [`Mempool::make_payload`] interleave content from all shards under the
/// configured byte budget, and incoming proposals are filled by fanning
/// per-shard groups back out to the owning instances.
pub struct ShardedMempool<M> {
    shards: Vec<M>,
    router: ShardRouter,
    mux: TimerMux,
    /// Round-robin start offset for payload assembly, advanced once per
    /// `make_payload` so no shard is systematically favoured when the
    /// byte budget binds.
    cursor: usize,
    /// Byte budget for one cross-shard payload.
    budget: usize,
    /// Content drained from shards that did not fit into the previous
    /// payload; included first in the next one.
    carry: VecDeque<PayloadItem>,
    /// Wire bytes currently held in `carry`, maintained incrementally so
    /// `make_payload` can tell when a full budget's worth is already
    /// backlogged without walking the queue.
    carry_bytes: usize,
    /// For proposals answered with `MustWait`: the shards whose fill is
    /// still outstanding.  The aggregated `ProposalReady` is emitted when
    /// the set drains.
    pending_fills: HashMap<BlockId, HashSet<u16>>,
}

impl<M: Mempool> ShardedMempool<M> {
    /// Builds a sharded mempool with `shards` instances produced by
    /// `make` (called with the shard index).
    pub fn new<F: FnMut(usize) -> M>(config: &SystemConfig, shards: usize, mut make: F) -> Self {
        let shards = shards.max(1);
        ShardedMempool {
            shards: (0..shards).map(&mut make).collect(),
            router: ShardRouter::new(shards),
            mux: TimerMux::new(),
            cursor: 0,
            budget: config.mempool.max_proposal_bytes.max(1),
            carry: VecDeque::new(),
            carry_bytes: 0,
            pending_fills: HashMap::new(),
        }
    }

    /// Builds a sharded mempool with the shard count from
    /// [`SystemConfig::shards`].
    pub fn from_system<F: FnMut(usize) -> M>(config: &SystemConfig, make: F) -> Self {
        ShardedMempool::new(config, config.shards, make)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router assigning transactions to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// A specific inner instance (for inspection).
    pub fn shard(&self, index: usize) -> &M {
        &self.shards[index]
    }

    /// Per-shard counters (the [`Mempool::stats`] roll-up, unaggregated).
    pub fn shard_stats(&self) -> Vec<MempoolStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Content drained from shards but not yet placed into a payload.
    pub fn carried_items(&self) -> usize {
        self.carry.len()
    }

    /// Re-tags effects coming out of shard `shard`: messages get the
    /// envelope, timers go through the multiplexer, and per-shard
    /// `ProposalReady` events are aggregated so consensus sees exactly one
    /// notification per proposal, after the *last* waiting shard fills.
    fn lift(&mut self, shard: u16, fx: Effects<M::Msg>) -> Effects<ShardedMsg<M::Msg>> {
        let mut out = Effects::none();
        for (dest, msg) in fx.msgs {
            out.msgs.push((dest, ShardedMsg::new(shard, msg)));
        }
        for (delay, tag) in fx.timers {
            out.timers.push((delay, self.mux.arm(shard, tag)));
        }
        for ev in fx.events {
            match ev {
                MempoolEvent::ProposalReady { proposal } => {
                    match self.pending_fills.get_mut(&proposal) {
                        Some(waiting) => {
                            waiting.remove(&shard);
                            if waiting.is_empty() {
                                self.pending_fills.remove(&proposal);
                                out.event(MempoolEvent::ProposalReady { proposal });
                            }
                        }
                        // Not tracked (e.g. the backend re-announced):
                        // forward untouched.
                        None => out.event(MempoolEvent::ProposalReady { proposal }),
                    }
                }
                other => out.event(other),
            }
        }
        out
    }

    /// The sub-proposal handed to one shard: same header and id as the
    /// original (so per-shard `ProposalReady` / commit bookkeeping keys
    /// line up), carrying only that shard's payload group.
    fn sub_proposal(proposal: &Proposal, payload: Payload) -> Proposal {
        Proposal {
            view: proposal.view,
            height: proposal.height,
            id: proposal.id,
            parent: proposal.parent,
            proposer: proposal.proposer,
            payload,
            carries_qc: proposal.carries_qc,
        }
    }

    /// Drops carried refs that `proposal` already orders.  The backends
    /// deduplicate their own queues when they see a proposal, but content
    /// sitting in the wrapper-level carry queue is invisible to them —
    /// without this, a ref drained here and then proposed by another
    /// leader would be proposed (and executed) a second time.
    fn prune_carry(&mut self, proposal: &Proposal) {
        if self.carry.is_empty() {
            return;
        }
        fn collect(payload: &Payload, ids: &mut HashSet<smp_types::MicroblockId>) {
            match payload {
                Payload::Refs(refs) => ids.extend(refs.iter().map(|r| r.id)),
                Payload::Sharded(groups) => {
                    for (_, p) in groups {
                        collect(p, ids);
                    }
                }
                _ => {}
            }
        }
        let mut ids = HashSet::new();
        collect(&proposal.payload, &mut ids);
        if ids.is_empty() {
            return;
        }
        self.carry.retain(|item| match item {
            PayloadItem::Ref(_, r) => !ids.contains(&r.id),
            PayloadItem::Tx(..) => true,
        });
        self.carry_bytes = self.carry.iter().map(PayloadItem::wire_size).sum();
    }

    /// Drains every shard's proposable content (round-robin from the
    /// current cursor) into the item queue, after any carried-over items.
    ///
    /// When the carry queue already holds a full budget's worth of
    /// content, shards are left untouched: their content stays inside the
    /// backend (which deduplicates against committed proposals) instead
    /// of accumulating without bound in the carry queue under sustained
    /// overload.
    fn drain_shards(&mut self, now: SimTime) -> Vec<PayloadItem> {
        let k = self.shards.len();
        let backlogged = self.carry_bytes >= self.budget;
        let mut items: Vec<PayloadItem> = self.carry.drain(..).collect();
        self.carry_bytes = 0;
        if backlogged {
            return items;
        }
        for off in 0..k {
            let s = (self.cursor + off) % k;
            match self.shards[s].make_payload(now) {
                Payload::Empty => {}
                Payload::Refs(refs) => {
                    items.extend(refs.into_iter().map(|r| PayloadItem::Ref(s as u16, r)));
                }
                Payload::Inline(txs) => {
                    items.extend(txs.iter().cloned().map(|t| PayloadItem::Tx(s as u16, t)));
                }
                // Backends never emit nested sharded payloads; fold the
                // groups in defensively if one ever does.
                Payload::Sharded(groups) => {
                    for (_, p) in groups {
                        match p {
                            Payload::Refs(refs) => items
                                .extend(refs.into_iter().map(|r| PayloadItem::Ref(s as u16, r))),
                            Payload::Inline(txs) => items
                                .extend(txs.iter().cloned().map(|t| PayloadItem::Tx(s as u16, t))),
                            _ => {}
                        }
                    }
                }
            }
        }
        self.cursor = (self.cursor + 1) % k;
        items
    }

    /// Assembles items into per-shard groups under the byte budget; what
    /// does not fit goes back to the carry queue in order.
    fn assemble(&mut self, items: Vec<PayloadItem>) -> Payload {
        let mut order: Vec<u16> = Vec::new();
        let mut refs: HashMap<u16, Vec<MicroblockRef>> = HashMap::new();
        let mut txs: HashMap<u16, Vec<Transaction>> = HashMap::new();
        let mut used = 0usize;
        let mut full = false;
        for item in items {
            if full {
                self.carry_bytes += item.wire_size();
                self.carry.push_back(item);
                continue;
            }
            let shard = item.shard();
            let group_cost = if order.contains(&shard) {
                0
            } else {
                SHARD_GROUP_TAG_BYTES
            };
            let cost = item.wire_size() + group_cost;
            // Always admit the first item so an oversized single item
            // cannot wedge the pipeline.
            if used > 0 && used + cost > self.budget {
                full = true;
                self.carry_bytes += item.wire_size();
                self.carry.push_back(item);
                continue;
            }
            used += cost;
            if !order.contains(&shard) {
                order.push(shard);
            }
            match item {
                PayloadItem::Ref(_, r) => refs.entry(shard).or_default().push(r),
                PayloadItem::Tx(_, t) => txs.entry(shard).or_default().push(t),
            }
        }
        let mut groups: Vec<(u16, Payload)> = Vec::with_capacity(order.len());
        for shard in order {
            if let Some(r) = refs.remove(&shard) {
                groups.push((shard, Payload::Refs(r)));
            }
            if let Some(t) = txs.remove(&shard) {
                groups.push((shard, Payload::inline(t)));
            }
        }
        Payload::sharded(groups)
    }
}

impl<M: Mempool> Mempool for ShardedMempool<M> {
    type Msg = ShardedMsg<M::Msg>;

    fn on_client_txs(
        &mut self,
        now: SimTime,
        txs: Vec<Transaction>,
        rng: &mut SmallRng,
    ) -> Effects<Self::Msg> {
        let mut out = Effects::none();
        for (shard, group) in self.router.partition(txs) {
            let fx = self.shards[shard].on_client_txs(now, group, rng);
            out.merge(self.lift(shard as u16, fx));
        }
        out
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: ReplicaId,
        msg: Self::Msg,
        rng: &mut SmallRng,
    ) -> Effects<Self::Msg> {
        let shard = msg.shard;
        if shard as usize >= self.shards.len() {
            // A peer with a different shard count is misconfigured (or
            // Byzantine); drop the message rather than panic.
            return Effects::none();
        }
        let fx = self.shards[shard as usize].on_message(now, from, msg.inner, rng);
        self.lift(shard, fx)
    }

    fn on_timer(&mut self, now: SimTime, tag: TimerTag, rng: &mut SmallRng) -> Effects<Self::Msg> {
        match self.mux.fire(tag) {
            Some((shard, inner)) => {
                let fx = self.shards[shard as usize].on_timer(now, inner, rng);
                self.lift(shard, fx)
            }
            None => Effects::none(),
        }
    }

    fn make_payload(&mut self, now: SimTime) -> Payload {
        if self.shards.len() == 1 && self.carry.is_empty() {
            // Transparent fast path: one shard proposes exactly what the
            // unwrapped backend would.
            return self.shards[0].make_payload(now);
        }
        let items = self.drain_shards(now);
        self.assemble(items)
    }

    fn on_proposal(
        &mut self,
        now: SimTime,
        proposal: &Proposal,
        rng: &mut SmallRng,
    ) -> (FillStatus, Effects<Self::Msg>) {
        self.prune_carry(proposal);
        match &proposal.payload {
            Payload::Sharded(groups) => {
                let mut out = Effects::none();
                let mut missing = Vec::new();
                let mut waiting: HashSet<u16> = HashSet::new();
                for (shard, sub) in groups {
                    if *shard as usize >= self.shards.len() {
                        return (FillStatus::Invalid("unknown shard in proposal"), out);
                    }
                    let sub_prop = Self::sub_proposal(proposal, sub.clone());
                    let (status, fx) =
                        self.shards[*shard as usize].on_proposal(now, &sub_prop, rng);
                    out.merge(self.lift(*shard, fx));
                    match status {
                        FillStatus::Ready => {}
                        FillStatus::MustWait(ids) => {
                            missing.extend(ids);
                            waiting.insert(*shard);
                        }
                        FillStatus::Invalid(reason) => {
                            return (FillStatus::Invalid(reason), out);
                        }
                    }
                }
                if waiting.is_empty() {
                    (FillStatus::Ready, out)
                } else {
                    self.pending_fills.insert(proposal.id, waiting);
                    (FillStatus::MustWait(missing), out)
                }
            }
            // Empty / inline / single-shard payloads belong to shard 0.
            _ => {
                let (status, fx) = self.shards[0].on_proposal(now, proposal, rng);
                if matches!(status, FillStatus::MustWait(_)) {
                    self.pending_fills
                        .insert(proposal.id, HashSet::from([0u16]));
                }
                let out = self.lift(0, fx);
                (status, out)
            }
        }
    }

    fn on_commit(&mut self, now: SimTime, proposal: &Proposal) -> Effects<Self::Msg> {
        self.pending_fills.remove(&proposal.id);
        self.prune_carry(proposal);
        match &proposal.payload {
            Payload::Sharded(groups) => {
                let mut out = Effects::none();
                for (shard, sub) in groups {
                    if *shard as usize >= self.shards.len() {
                        continue;
                    }
                    let sub_prop = Self::sub_proposal(proposal, sub.clone());
                    let fx = self.shards[*shard as usize].on_commit(now, &sub_prop);
                    out.merge(self.lift(*shard, fx));
                }
                out
            }
            _ => {
                let fx = self.shards[0].on_commit(now, proposal);
                self.lift(0, fx)
            }
        }
    }

    fn stats(&self) -> MempoolStats {
        let mut total = MempoolStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.unbatched_txs += st.unbatched_txs;
            total.stored_microblocks += st.stored_microblocks;
            total.proposable_microblocks += st.proposable_microblocks;
            total.created_microblocks += st.created_microblocks;
            total.forwarded_microblocks += st.forwarded_microblocks;
            total.fetches_issued += st.fetches_issued;
        }
        total
    }
}
