//! The sharded mempool wrapper.

use crate::envelope::ShardedMsg;
use crate::executor::{Executor, ParallelExecutor, SequentialExecutor, ShardExecutor, ShardOp};
use crate::mux::TimerMux;
use crate::router::ShardRouter;
use rand::rngs::SmallRng;
use smp_mempool::{Effects, FillStatus, Mempool, MempoolEvent, MempoolStats, TimerTag};
use smp_telemetry::Telemetry;
use smp_types::{
    BlockId, ExecutorKind, MicroblockRef, Payload, Proposal, ReplicaId, SimTime, SystemConfig,
    Transaction, WireSize, SHARD_GROUP_TAG_BYTES,
};
use std::collections::{HashMap, HashSet, VecDeque};

/// One unit of proposable content drained from a shard, waiting to be
/// placed into a cross-shard payload.
#[derive(Clone, Debug)]
enum PayloadItem {
    /// A microblock reference from a shared-mempool backend.
    Ref(u16, MicroblockRef),
    /// An inline transaction from a native backend.
    Tx(u16, Transaction),
}

impl PayloadItem {
    fn shard(&self) -> u16 {
        match self {
            PayloadItem::Ref(s, _) | PayloadItem::Tx(s, _) => *s,
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            PayloadItem::Ref(_, r) => r.wire_size(),
            PayloadItem::Tx(_, t) => t.wire_size(),
        }
    }
}

/// The per-shard system configuration: the microblock batch budget is
/// divided across the `k` dissemination pipelines (min-clamped to one
/// transaction) so a sharded replica seals the same total bytes per batch
/// interval as an unsharded one instead of `k` times as many.
pub fn per_shard_config(config: &SystemConfig, shards: usize) -> SystemConfig {
    let k = shards.max(1);
    let mut shard_config = config.clone();
    if k > 1 {
        shard_config.mempool.batch_size_bytes = (config.mempool.batch_size_bytes / k)
            .max(config.mempool.tx_payload_bytes)
            .max(1);
    }
    shard_config
}

/// A shared mempool running `k` independent dissemination pipelines.
///
/// Wraps `k` instances of any backend mempool `M`.  Client transactions
/// are routed to instances by id hash; instance `j` on this replica
/// exchanges messages only with instance `j` on its peers (the
/// [`ShardedMsg`] envelope carries the index).  Proposals assembled by
/// [`Mempool::make_payload`] interleave content from all shards under the
/// configured byte budget, and incoming proposals are filled by fanning
/// per-shard groups back out to the owning instances.
///
/// The instances are driven by a [`ShardExecutor`]: inline on the
/// replica's thread ([`SequentialExecutor`], the default) or one worker
/// thread per shard ([`ParallelExecutor`]).  The two are byte-identical
/// on the same seed (see the executor module docs for the determinism
/// contract), so the choice is purely about hardware parallelism.
pub struct ShardedMempool<M: Mempool> {
    executor: Executor<M>,
    router: ShardRouter,
    mux: TimerMux,
    /// Round-robin start offset for payload assembly, advanced once per
    /// `make_payload` so no shard is systematically favoured when the
    /// byte budget binds.
    cursor: usize,
    /// Byte budget for one cross-shard payload.
    budget: usize,
    /// Content drained from shards that did not fit into the previous
    /// payload; included first in the next one.
    carry: VecDeque<PayloadItem>,
    /// Wire bytes currently held in `carry`, maintained incrementally so
    /// `make_payload` can tell when a full budget's worth is already
    /// backlogged without walking the queue.
    carry_bytes: usize,
    /// For proposals answered with `MustWait`: the shards whose fill is
    /// still outstanding.  The aggregated `ProposalReady` is emitted when
    /// the set drains.
    pending_fills: HashMap<BlockId, HashSet<u16>>,
    /// Merges the per-shard DLB state (LbInfo samples, in-flight bans)
    /// into one coherent cross-shard view after every event-handling
    /// round, so no two shards disagree on banList membership.
    coordinator: stratus::ShardLoadCoordinator,
    /// Whether the backend participates in load coordination — probed
    /// lazily on the first round ([`Mempool::load_snapshot`] returning
    /// `None` everywhere means never coordinate again).
    load_coordinated: Option<bool>,
    /// Observability only; also pushed into the executor (per shard,
    /// re-prefixed `shard.<i>`) by [`Mempool::set_telemetry`].
    telemetry: Telemetry,
}

impl<M: Mempool> ShardedMempool<M> {
    /// Builds a sequentially executed sharded mempool with `shards`
    /// instances produced by `make`, which receives the shard index and
    /// the per-shard configuration (batch budget divided by `k`, see
    /// [`per_shard_config`]).  Uses RNG salt 0 — in a multi-replica
    /// deployment use [`Self::sequential`] with the replica id so peers
    /// do not draw correlated per-shard streams.
    pub fn new<F: FnMut(usize, &SystemConfig) -> M>(
        config: &SystemConfig,
        shards: usize,
        make: F,
    ) -> Self {
        Self::sequential(config, shards, 0, make)
    }

    /// Builds a sequentially executed sharded mempool.  `salt`
    /// distinguishes the per-shard RNG streams of different replicas
    /// (pass the replica id).
    pub fn sequential<F: FnMut(usize, &SystemConfig) -> M>(
        config: &SystemConfig,
        shards: usize,
        salt: u64,
        make: F,
    ) -> Self {
        let k = shards.max(1);
        let executor = Executor::Sequential(SequentialExecutor::new(
            Self::instances(config, k, make),
            config.seed,
            salt,
        ));
        Self::with_executor(config, executor)
    }

    /// Wraps a pre-built executor.
    pub fn with_executor(config: &SystemConfig, executor: Executor<M>) -> Self {
        let k = executor.shard_count();
        ShardedMempool {
            executor,
            router: ShardRouter::new(k),
            mux: TimerMux::new(),
            cursor: 0,
            budget: config.mempool.max_proposal_bytes.max(1),
            carry: VecDeque::new(),
            carry_bytes: 0,
            pending_fills: HashMap::new(),
            coordinator: stratus::ShardLoadCoordinator::new(),
            load_coordinated: None,
            telemetry: Telemetry::disabled(),
        }
    }

    fn instances<F: FnMut(usize, &SystemConfig) -> M>(
        config: &SystemConfig,
        k: usize,
        mut make: F,
    ) -> Vec<M> {
        let shard_config = per_shard_config(config, k);
        (0..k).map(|s| make(s, &shard_config)).collect()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.executor.shard_count()
    }

    /// The router assigning transactions to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Whether the shards run on worker threads.
    pub fn is_parallel(&self) -> bool {
        matches!(self.executor, Executor::Parallel(_))
    }

    /// Per-shard counters (the [`Mempool::stats`] roll-up, unaggregated).
    pub fn shard_stats(&self) -> Vec<MempoolStats> {
        self.executor.shard_stats()
    }

    /// Content drained from shards but not yet placed into a payload.
    pub fn carried_items(&self) -> usize {
        self.carry.len()
    }

    /// A specific backend instance, when it lives on the calling thread
    /// (sequential or inline-parallel execution); `None` for worker-owned
    /// shards.  For inspection and tests.
    pub fn shard(&self, index: usize) -> Option<&M> {
        self.executor.shard(index)
    }

    /// The cross-shard load coordinator's merged ban view (for
    /// inspection and tests).
    pub fn coordinated_bans(&self) -> Vec<ReplicaId> {
        self.coordinator.banned()
    }

    /// One coordination round: drain every shard's load snapshot, fold
    /// samples and in-flight bans into the merged view, and impose that
    /// view back on every shard.  Backends without load balancing are
    /// detected on the first round and skipped forever after.
    fn coordinate_load(&mut self) {
        let k = self.executor.shard_count();
        if k == 1 || self.load_coordinated == Some(false) {
            return;
        }
        let ops: Vec<(u16, ShardOp<M>)> =
            (0..k as u16).map(|s| (s, ShardOp::LoadSnapshot)).collect();
        let outputs = self.executor.run(ops, None);
        let mut any = false;
        for (shard, output) in (0..k as u16).zip(outputs) {
            let Some(snap) = output.into_snapshot() else {
                continue;
            };
            any = true;
            if snap.reset {
                self.coordinator.reset_banlist();
            }
            for (peer, load) in snap.samples {
                self.coordinator.record(shard, peer, load);
            }
            self.coordinator
                .absorb_bans(shard, snap.own_bans.into_iter().collect());
        }
        if self.load_coordinated.is_none() {
            self.load_coordinated = Some(any);
        }
        if !any {
            return;
        }
        let banned = self.coordinator.banned();
        let ops: Vec<(u16, ShardOp<M>)> = (0..k as u16)
            .map(|s| {
                (
                    s,
                    ShardOp::ApplyLoadView {
                        banned: banned.clone(),
                    },
                )
            })
            .collect();
        let _ = self.executor.run(ops, None);
    }

    /// Re-tags effects coming out of shard `shard`: messages get the
    /// envelope, timers go through the multiplexer, and per-shard
    /// `ProposalReady` events are aggregated so consensus sees exactly one
    /// notification per proposal, after the *last* waiting shard fills.
    fn lift(&mut self, shard: u16, fx: Effects<M::Msg>) -> Effects<ShardedMsg<M::Msg>> {
        let mut out = Effects::none();
        for (dest, msg) in fx.msgs {
            out.msgs.push((dest, ShardedMsg::new(shard, msg)));
        }
        for (delay, tag) in fx.timers {
            out.timers.push((delay, self.mux.arm(shard, tag)));
        }
        for ev in fx.events {
            match ev {
                MempoolEvent::ProposalReady { proposal } => {
                    match self.pending_fills.get_mut(&proposal) {
                        Some(waiting) => {
                            waiting.remove(&shard);
                            if waiting.is_empty() {
                                self.pending_fills.remove(&proposal);
                                out.event(MempoolEvent::ProposalReady { proposal });
                            }
                        }
                        // Not tracked (e.g. the backend re-announced):
                        // forward untouched.
                        None => out.event(MempoolEvent::ProposalReady { proposal }),
                    }
                }
                other => out.event(other),
            }
        }
        out
    }

    /// Runs a batch of per-shard operations and merges the lifted effects
    /// in submission order.
    fn run_effects(
        &mut self,
        ops: Vec<(u16, ShardOp<M>)>,
        rng: Option<&mut SmallRng>,
    ) -> Effects<ShardedMsg<M::Msg>> {
        if ops.is_empty() {
            return Effects::none();
        }
        let shards: Vec<u16> = ops.iter().map(|(s, _)| *s).collect();
        let _span = self.telemetry.span("sharded.exec");
        let outputs = self.executor.run(ops, rng);
        drop(_span);
        let mut out = Effects::none();
        for (shard, output) in shards.into_iter().zip(outputs) {
            out.merge(self.lift(shard, output.into_effects()));
        }
        // Event handling may have changed a shard's DLB state (an LbInfo
        // reply arrived, a forward went out, the reset fired): fold it
        // into the merged view before control returns to the replica.
        self.coordinate_load();
        out
    }

    /// The sub-proposal handed to one shard: same header and id as the
    /// original (so per-shard `ProposalReady` / commit bookkeeping keys
    /// line up), carrying only that shard's payload group.
    fn sub_proposal(proposal: &Proposal, payload: Payload) -> Proposal {
        Proposal {
            view: proposal.view,
            height: proposal.height,
            id: proposal.id,
            parent: proposal.parent,
            proposer: proposal.proposer,
            payload,
            carries_qc: proposal.carries_qc,
        }
    }

    /// Drops carried refs that `proposal` already orders.  The backends
    /// deduplicate their own queues when they see a proposal, but content
    /// sitting in the wrapper-level carry queue is invisible to them —
    /// without this, a ref drained here and then proposed by another
    /// leader would be proposed (and executed) a second time.
    fn prune_carry(&mut self, proposal: &Proposal) {
        if self.carry.is_empty() {
            return;
        }
        fn collect(payload: &Payload, ids: &mut HashSet<smp_types::MicroblockId>) {
            match payload {
                Payload::Refs(refs) => ids.extend(refs.iter().map(|r| r.id)),
                Payload::Sharded(groups) => {
                    for (_, p) in groups {
                        collect(p, ids);
                    }
                }
                _ => {}
            }
        }
        let mut ids = HashSet::new();
        collect(&proposal.payload, &mut ids);
        if ids.is_empty() {
            return;
        }
        self.carry.retain(|item| match item {
            PayloadItem::Ref(_, r) => !ids.contains(&r.id),
            PayloadItem::Tx(..) => true,
        });
        self.carry_bytes = self.carry.iter().map(PayloadItem::wire_size).sum();
    }

    /// Drains every shard's proposable content (round-robin from the
    /// current cursor) into the item queue, after any carried-over items.
    ///
    /// When the carry queue already holds a full budget's worth of
    /// content, shards are left untouched: their content stays inside the
    /// backend (which deduplicates against committed proposals) instead
    /// of accumulating without bound in the carry queue under sustained
    /// overload.
    fn drain_shards(&mut self, now: SimTime) -> Vec<PayloadItem> {
        let k = self.executor.shard_count();
        let backlogged = self.carry_bytes >= self.budget;
        let mut items: Vec<PayloadItem> = self.carry.drain(..).collect();
        self.carry_bytes = 0;
        if backlogged {
            return items;
        }
        let ops: Vec<(u16, ShardOp<M>)> = (0..k)
            .map(|off| {
                let s = (self.cursor + off) % k;
                (s as u16, ShardOp::MakePayload { now })
            })
            .collect();
        let shards: Vec<u16> = ops.iter().map(|(s, _)| *s).collect();
        let payloads = self.executor.run(ops, None);
        for (s, output) in shards.into_iter().zip(payloads) {
            match output.into_payload() {
                Payload::Empty => {}
                Payload::Refs(refs) => {
                    items.extend(refs.into_iter().map(|r| PayloadItem::Ref(s, r)));
                }
                Payload::Inline(txs) => {
                    items.extend(txs.iter().cloned().map(|t| PayloadItem::Tx(s, t)));
                }
                // Backends never emit nested sharded payloads; fold the
                // groups in defensively if one ever does.
                Payload::Sharded(groups) => {
                    for (_, p) in groups {
                        match p {
                            Payload::Refs(refs) => {
                                items.extend(refs.into_iter().map(|r| PayloadItem::Ref(s, r)))
                            }
                            Payload::Inline(txs) => {
                                items.extend(txs.iter().cloned().map(|t| PayloadItem::Tx(s, t)))
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        self.cursor = (self.cursor + 1) % k;
        items
    }

    /// Assembles items into per-shard groups under the byte budget; what
    /// does not fit goes back to the carry queue in order.
    fn assemble(&mut self, items: Vec<PayloadItem>) -> Payload {
        let mut order: Vec<u16> = Vec::new();
        let mut refs: HashMap<u16, Vec<MicroblockRef>> = HashMap::new();
        let mut txs: HashMap<u16, Vec<Transaction>> = HashMap::new();
        let mut used = 0usize;
        let mut full = false;
        for item in items {
            if full {
                self.carry_bytes += item.wire_size();
                self.carry.push_back(item);
                continue;
            }
            let shard = item.shard();
            let group_cost = if order.contains(&shard) {
                0
            } else {
                SHARD_GROUP_TAG_BYTES
            };
            let cost = item.wire_size() + group_cost;
            // Always admit the first item so an oversized single item
            // cannot wedge the pipeline.
            if used > 0 && used + cost > self.budget {
                full = true;
                self.carry_bytes += item.wire_size();
                self.carry.push_back(item);
                continue;
            }
            used += cost;
            if !order.contains(&shard) {
                order.push(shard);
            }
            match item {
                PayloadItem::Ref(_, r) => refs.entry(shard).or_default().push(r),
                PayloadItem::Tx(_, t) => txs.entry(shard).or_default().push(t),
            }
        }
        let mut groups: Vec<(u16, Payload)> = Vec::with_capacity(order.len());
        for shard in order {
            if let Some(r) = refs.remove(&shard) {
                groups.push((shard, Payload::Refs(r)));
            }
            if let Some(t) = txs.remove(&shard) {
                groups.push((shard, Payload::inline(t)));
            }
        }
        Payload::sharded(groups)
    }
}

impl<M> ShardedMempool<M>
where
    M: Mempool + Send + 'static,
    M::Msg: Send,
{
    /// Builds a sharded mempool whose shards run on worker threads.
    /// `salt` distinguishes the per-shard RNG streams of different
    /// replicas (pass the replica id); on the same `(config, salt)` the
    /// parallel mempool is byte-identical to the sequential one.
    pub fn parallel<F: FnMut(usize, &SystemConfig) -> M>(
        config: &SystemConfig,
        shards: usize,
        salt: u64,
        make: F,
    ) -> Self {
        let k = shards.max(1);
        let executor = Executor::Parallel(ParallelExecutor::new(
            Self::instances(config, k, make),
            config.seed,
            salt,
        ));
        Self::with_executor(config, executor)
    }

    /// Builds a sharded mempool with the shard count and executor kind
    /// from [`SystemConfig::shards`] / [`SystemConfig::executor`].
    ///
    /// `salt` distinguishes the per-shard RNG streams of different
    /// replicas — pass the replica id.  Two replicas built with the same
    /// salt draw identical per-shard streams and make correlated random
    /// choices.
    pub fn from_system<F: FnMut(usize, &SystemConfig) -> M>(
        config: &SystemConfig,
        salt: u64,
        make: F,
    ) -> Self {
        match config.executor {
            ExecutorKind::Sequential => Self::sequential(config, config.shards, salt, make),
            ExecutorKind::Parallel => Self::parallel(config, config.shards, salt, make),
        }
    }
}

impl<M: Mempool> Mempool for ShardedMempool<M> {
    type Msg = ShardedMsg<M::Msg>;

    fn on_client_txs(
        &mut self,
        now: SimTime,
        txs: Vec<Transaction>,
        rng: &mut SmallRng,
    ) -> Effects<Self::Msg> {
        let ops: Vec<(u16, ShardOp<M>)> = self
            .router
            .partition(txs)
            .into_iter()
            .map(|(shard, group)| (shard as u16, ShardOp::ClientTxs { now, txs: group }))
            .collect();
        self.run_effects(ops, Some(rng))
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: ReplicaId,
        msg: Self::Msg,
        rng: &mut SmallRng,
    ) -> Effects<Self::Msg> {
        let shard = msg.shard;
        if shard as usize >= self.executor.shard_count() {
            // A peer with a different shard count is misconfigured (or
            // Byzantine); drop the message rather than panic.
            return Effects::none();
        }
        let ops = vec![(
            shard,
            ShardOp::Message {
                now,
                from,
                msg: msg.inner,
            },
        )];
        self.run_effects(ops, Some(rng))
    }

    fn on_timer(&mut self, now: SimTime, tag: TimerTag, rng: &mut SmallRng) -> Effects<Self::Msg> {
        match self.mux.fire(tag) {
            Some((shard, inner)) => {
                let ops = vec![(shard, ShardOp::Timer { now, tag: inner })];
                self.run_effects(ops, Some(rng))
            }
            None => Effects::none(),
        }
    }

    fn make_payload(&mut self, now: SimTime) -> Payload {
        if self.executor.shard_count() == 1 && self.carry.is_empty() {
            // Transparent fast path: one shard proposes exactly what the
            // unwrapped backend would.
            let outputs = self
                .executor
                .run(vec![(0, ShardOp::MakePayload { now })], None);
            return outputs
                .into_iter()
                .next()
                .expect("one output")
                .into_payload();
        }
        let _span = self.telemetry.span_at("sharded.make_payload", now);
        let items = self.drain_shards(now);
        let payload = self.assemble(items);
        self.telemetry
            .gauge_set("sharded.carry_items", self.carry.len() as f64);
        self.telemetry
            .gauge_set("sharded.carry_bytes", self.carry_bytes as f64);
        payload
    }

    fn on_proposal(
        &mut self,
        now: SimTime,
        proposal: &Proposal,
        rng: &mut SmallRng,
    ) -> (FillStatus, Effects<Self::Msg>) {
        self.prune_carry(proposal);
        match &proposal.payload {
            Payload::Sharded(groups) => {
                let k = self.executor.shard_count();
                if groups.iter().any(|(shard, _)| *shard as usize >= k) {
                    return (
                        FillStatus::Invalid("unknown shard in proposal"),
                        Effects::none(),
                    );
                }
                // Every referenced shard verifies its group; the verdicts
                // are aggregated afterwards so the executor can fan the
                // sub-proposals out concurrently.
                let ops: Vec<(u16, ShardOp<M>)> = groups
                    .iter()
                    .map(|(shard, sub)| {
                        (
                            *shard,
                            ShardOp::Proposal {
                                now,
                                proposal: Self::sub_proposal(proposal, sub.clone()),
                            },
                        )
                    })
                    .collect();
                let shards: Vec<u16> = ops.iter().map(|(s, _)| *s).collect();
                let outputs = self.executor.run(ops, Some(rng));
                let mut out = Effects::none();
                let mut missing = Vec::new();
                let mut waiting: HashSet<u16> = HashSet::new();
                let mut invalid: Option<&'static str> = None;
                for (shard, output) in shards.into_iter().zip(outputs) {
                    let (status, fx) = output.into_fill();
                    out.merge(self.lift(shard, fx));
                    match status {
                        FillStatus::Ready => {}
                        FillStatus::MustWait(ids) => {
                            missing.extend(ids);
                            waiting.insert(shard);
                        }
                        FillStatus::Invalid(reason) => {
                            invalid.get_or_insert(reason);
                        }
                    }
                }
                if let Some(reason) = invalid {
                    // Waiting shards are deliberately NOT registered in
                    // `pending_fills`: consensus rejects the proposal, so
                    // a shard's later per-shard `ProposalReady` is
                    // forwarded untracked and dropped by the replica's
                    // `pending_verdicts` guard (same as a backend
                    // re-announce), while registering it here would leak
                    // an entry for a proposal that never commits.
                    return (FillStatus::Invalid(reason), out);
                }
                if waiting.is_empty() {
                    (FillStatus::Ready, out)
                } else {
                    self.pending_fills.insert(proposal.id, waiting);
                    (FillStatus::MustWait(missing), out)
                }
            }
            // Empty / inline / single-shard payloads belong to shard 0.
            // The clone is shallow: transaction payloads are `Bytes`
            // (refcounted), so it costs O(items), not O(payload bytes).
            _ => {
                let ops = vec![(
                    0u16,
                    ShardOp::Proposal {
                        now,
                        proposal: proposal.clone(),
                    },
                )];
                let output = self
                    .executor
                    .run(ops, Some(rng))
                    .into_iter()
                    .next()
                    .expect("one output");
                let (status, fx) = output.into_fill();
                if matches!(status, FillStatus::MustWait(_)) {
                    self.pending_fills
                        .insert(proposal.id, HashSet::from([0u16]));
                }
                let out = self.lift(0, fx);
                (status, out)
            }
        }
    }

    fn on_commit(&mut self, now: SimTime, proposal: &Proposal) -> Effects<Self::Msg> {
        self.pending_fills.remove(&proposal.id);
        self.prune_carry(proposal);
        match &proposal.payload {
            Payload::Sharded(groups) => {
                let k = self.executor.shard_count();
                let ops: Vec<(u16, ShardOp<M>)> = groups
                    .iter()
                    .filter(|(shard, _)| (*shard as usize) < k)
                    .map(|(shard, sub)| {
                        (
                            *shard,
                            ShardOp::Commit {
                                now,
                                proposal: Self::sub_proposal(proposal, sub.clone()),
                            },
                        )
                    })
                    .collect();
                self.run_effects(ops, None)
            }
            _ => {
                let ops = vec![(
                    0u16,
                    ShardOp::Commit {
                        now,
                        proposal: proposal.clone(),
                    },
                )];
                self.run_effects(ops, None)
            }
        }
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.executor.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    fn stats(&self) -> MempoolStats {
        let mut total = MempoolStats::default();
        for st in self.executor.shard_stats() {
            total.unbatched_txs += st.unbatched_txs;
            total.stored_microblocks += st.stored_microblocks;
            total.proposable_microblocks += st.proposable_microblocks;
            total.created_microblocks += st.created_microblocks;
            total.forwarded_microblocks += st.forwarded_microblocks;
            total.fetches_issued += st.fetches_issued;
        }
        total
    }
}
