//! Timer-tag multiplexing across shards.
//!
//! Backend mempools pick timer tags from overlapping ad-hoc namespaces
//! (`BATCH_TIMEOUT_TAG`, `FETCH_TAG_BASE + n`, …), so two inner instances
//! of the same backend would collide if their tags were forwarded
//! unchanged, and the tag spaces are too scattered for bit-packing a
//! shard index.  [`TimerMux`] instead allocates a fresh outer tag per
//! armed timer and remembers which `(shard, inner tag)` it stands for;
//! timers are one-shot at this layer, so entries are dropped when they
//! fire.

use smp_mempool::TimerTag;
use std::collections::HashMap;

/// Maps outer (replica-facing) timer tags to per-shard inner tags.
#[derive(Clone, Debug, Default)]
pub struct TimerMux {
    next: TimerTag,
    pending: HashMap<TimerTag, (u16, TimerTag)>,
}

impl TimerMux {
    /// An empty multiplexer.
    pub fn new() -> Self {
        TimerMux::default()
    }

    /// Registers an inner timer and returns the outer tag to arm.
    pub fn arm(&mut self, shard: u16, inner: TimerTag) -> TimerTag {
        let outer = self.next;
        // Outer tags stay well below the replica layer's mempool-flag bit
        // (2^63); wrapping is unreachable in practice.
        self.next += 1;
        self.pending.insert(outer, (shard, inner));
        outer
    }

    /// Resolves a fired outer tag to its `(shard, inner tag)`, removing
    /// the registration.
    pub fn fire(&mut self, outer: TimerTag) -> Option<(u16, TimerTag)> {
        self.pending.remove(&outer)
    }

    /// Number of armed-but-unfired timers.
    pub fn armed(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_fire_roundtrip() {
        let mut mux = TimerMux::new();
        let a = mux.arm(0, 42);
        let b = mux.arm(3, 42);
        assert_ne!(
            a, b,
            "same inner tag on different shards gets distinct outer tags"
        );
        assert_eq!(mux.armed(), 2);
        assert_eq!(mux.fire(b), Some((3, 42)));
        assert_eq!(mux.fire(b), None, "timers are one-shot");
        assert_eq!(mux.fire(a), Some((0, 42)));
        assert_eq!(mux.armed(), 0);
    }

    #[test]
    fn outer_tags_are_unique_across_many_arms() {
        let mut mux = TimerMux::new();
        let tags: Vec<TimerTag> = (0..1000).map(|i| mux.arm((i % 4) as u16, 7)).collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), tags.len());
    }
}
