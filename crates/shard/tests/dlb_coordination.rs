//! Cross-shard DLB coordination: a load shift observed by one shard's
//! load balancer must produce one coherent ban view across all `k`
//! shards of the replica, so no shard keeps forwarding to a proxy that
//! another shard already knows is saturated.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_crypto::{KeyPair, Signature};
use smp_mempool::{Dest, Effects, Mempool};
use smp_shard::{ShardedMempool, ShardedMsg};
use smp_types::{ClientId, MempoolConfig, Microblock, ReplicaId, SystemConfig, Transaction};
use stratus::{DlbConfig, StratusConfig, StratusMempool, StratusMsg};

const N: usize = 4;
const K: usize = 2;

fn system() -> SystemConfig {
    SystemConfig::new(N).with_mempool(MempoolConfig {
        // Per-shard budget after the k-way split is one 168-wire-byte
        // transaction, so every routed tx seals a microblock immediately.
        batch_size_bytes: 168 * K,
        tx_payload_bytes: 128,
        ..MempoolConfig::default()
    })
}

fn sharded() -> (ShardedMempool<StratusMempool>, SmallRng) {
    let sys = system();
    let cfg = StratusConfig {
        dlb: DlbConfig {
            estimator_window: 4,
            busy_factor: 2.0,
            d: 2,
            ..DlbConfig::default()
        },
        // No limiter: the forwarding path is exercised in isolation.
        data_bandwidth_share: None,
        ..StratusConfig::default()
    };
    let mp = ShardedMempool::sequential(&sys, K, 0, |_, shard_sys| {
        StratusMempool::new(shard_sys, cfg, ReplicaId(0))
    });
    (mp, SmallRng::seed_from_u64(7))
}

/// An endless supply of transactions that the router assigns to `shard`.
/// Distinct `client` values give disjoint transaction (and so microblock)
/// ids, letting each test phase seal fresh content.
fn txs_for_shard(
    mp: &ShardedMempool<StratusMempool>,
    shard: usize,
    client: u32,
) -> impl Iterator<Item = Transaction> + '_ {
    (0u64..).filter_map(move |seq| {
        let tx = Transaction::synthetic(ClientId(client), seq, 128, 0);
        (mp.router().shard_of_tx(&tx) == shard).then_some(tx)
    })
}

fn find_mb(fx: &Effects<ShardedMsg<StratusMsg>>, shard: u16) -> Option<Microblock> {
    fx.msgs
        .iter()
        .find_map(|(_, m)| match (&m.shard, &m.inner) {
            (s, StratusMsg::PabMsg(mb)) if *s == shard => Some(mb.clone()),
            _ => None,
        })
}

/// The `(target, token)` pairs of the shard's outgoing `LbQuery`s.
fn lb_queries(fx: &Effects<ShardedMsg<StratusMsg>>, shard: u16) -> Vec<(ReplicaId, u64)> {
    fx.msgs
        .iter()
        .filter_map(|(dest, m)| match (&m.shard, &m.inner) {
            (s, StratusMsg::LbQuery { token }) if *s == shard => match dest {
                Dest::One(r) => Some((*r, *token)),
                _ => None,
            },
            _ => None,
        })
        .collect()
}

/// A peer's PabAck, forged with the key the PAB engine derives for it
/// from the system seed — so the test can play any replica without
/// instantiating one.
fn forged_ack(seed: u64, peer: u32, mb: &Microblock) -> StratusMsg {
    StratusMsg::PabAck {
        id: mb.id,
        sig: Signature::sign(&KeyPair::derive(seed, peer).secret, &mb.id.digest()),
    }
}

/// Seals one microblock on `shard` per round and acks it from two peers
/// after `delay`, inflating the shard's stable-time estimate.
fn drive_shard_busy(
    mp: &mut ShardedMempool<StratusMempool>,
    shard: usize,
    base: u64,
    client: u32,
    rng: &mut SmallRng,
) {
    let seed = system().seed;
    let txs: Vec<Transaction> = txs_for_shard(mp, shard, client).take(6).collect();
    for (round, tx) in txs.into_iter().enumerate() {
        let now = base + round as u64 * 1_000_000;
        let fx = mp.on_client_txs(now, vec![tx], rng);
        // Once the estimator tips busy, seals sample proxies instead of
        // broadcasting — nothing left to ack that round.
        let Some(mb) = find_mb(&fx, shard as u16) else {
            continue;
        };
        // Slow rounds after a fast baseline push the estimate past
        // `busy_factor` times the floor.
        let delay = if round < 3 { 10_000 } else { 80_000 };
        for peer in [1u32, 2u32] {
            let _ = mp.on_message(
                now + delay,
                ReplicaId(peer),
                ShardedMsg::new(shard as u16, forged_ack(seed, peer, &mb)),
                rng,
            );
        }
    }
    assert!(
        mp.shard(shard).expect("sequential").estimator().is_busy(),
        "shard {shard} estimator should report busy after ST inflation"
    );
}

#[test]
fn load_shift_produces_one_coherent_ban_view_across_shards() {
    let (mut mp, mut rng) = sharded();
    drive_shard_busy(&mut mp, 0, 0, 0, &mut rng);

    // The next shard-0 microblock is load-balanced, not broadcast.
    let tx = txs_for_shard(&mp, 0, 1).next().expect("tx for shard 0");
    let fx = mp.on_client_txs(10_000_000, vec![tx], &mut rng);
    let queries = lb_queries(&fx, 0);
    assert_eq!(queries.len(), 2, "busy shard samples d=2 proxies");
    assert!(find_mb(&fx, 0).is_none(), "no self-broadcast while busy");

    // Both sampled peers reply lightly loaded; the balancer forwards to
    // one of them and bans it until the proof (or a reset) arrives.
    for (target, token) in &queries {
        let _ = mp.on_message(
            10_000_100,
            *target,
            ShardedMsg::new(
                0,
                StratusMsg::LbInfo {
                    token: *token,
                    stable_time_us: Some(10),
                },
            ),
            &mut rng,
        );
    }
    let bans0 = mp.shard(0).expect("sequential").load_balancer().banned();
    assert_eq!(bans0.len(), 1, "exactly the chosen proxy is banned");
    let proxy = bans0[0];

    // The coherence property under test: the ban taken by shard 0's
    // balancer is visible on shard 1 (and in the merged coordinator
    // view) within the same event-handling round — no second event is
    // needed to propagate it.
    assert!(
        mp.shard(1)
            .expect("sequential")
            .load_balancer()
            .is_banned(proxy),
        "shard 1 must share shard 0's ban of {proxy:?}"
    );
    assert!(
        mp.coordinated_bans().contains(&proxy),
        "the merged coordinator view includes the ban"
    );

    // And the coherent view changes behaviour: when shard 1 becomes
    // busy, its own sampling never touches the proxy shard 0 banned.
    drive_shard_busy(&mut mp, 1, 20_000_000, 2, &mut rng);
    let tx = txs_for_shard(&mp, 1, 3).next().expect("tx for shard 1");
    let fx = mp.on_client_txs(40_000_000, vec![tx], &mut rng);
    let queries = lb_queries(&fx, 1);
    assert!(!queries.is_empty(), "busy shard 1 samples proxies");
    assert!(
        queries.iter().all(|(target, _)| *target != proxy),
        "shard 1 sampling excludes the proxy banned via shard 0: {queries:?}"
    );
}

#[test]
fn banlist_reset_on_one_shard_clears_the_merged_view() {
    let (mut mp, mut rng) = sharded();

    // Shard 0's first event arms its periodic banList reset; the wrapper
    // remaps the tag through its timer multiplexer, so capture every
    // wrapper tag from the first round and fire them all later (the
    // batch-timeout tag fires as a harmless no-op alongside the reset).
    let first_tx = txs_for_shard(&mp, 0, 4).next().expect("tx for shard 0");
    let fx = mp.on_client_txs(0, vec![first_tx], &mut rng);
    let armed: Vec<u64> = fx.timers.iter().map(|(_, tag)| *tag).collect();
    assert!(!armed.is_empty(), "first round arms the reset timer");
    let mb = find_mb(&fx, 0).expect("first tx seals a microblock");
    let seed = system().seed;
    for peer in [1u32, 2u32] {
        let _ = mp.on_message(
            10_000,
            ReplicaId(peer),
            ShardedMsg::new(0, forged_ack(seed, peer, &mb)),
            &mut rng,
        );
    }

    drive_shard_busy(&mut mp, 0, 1_000_000, 5, &mut rng);
    let tx = txs_for_shard(&mp, 0, 6).next().expect("tx for shard 0");
    let fx = mp.on_client_txs(10_000_000, vec![tx], &mut rng);
    let queries = lb_queries(&fx, 0);
    for (target, token) in &queries {
        let _ = mp.on_message(
            10_000_100,
            *target,
            ShardedMsg::new(
                0,
                StratusMsg::LbInfo {
                    token: *token,
                    stable_time_us: Some(10),
                },
            ),
            &mut rng,
        );
    }
    let proxy = *mp
        .coordinated_bans()
        .first()
        .expect("forwarding banned the proxy");
    assert!(mp
        .shard(1)
        .expect("sequential")
        .load_balancer()
        .is_banned(proxy));

    // The reset must clear the merged view and every shard's imposed
    // bans, or stale cross-shard bans would linger beyond the paper's
    // banList reset interval.
    for tag in armed {
        let _ = mp.on_timer(15_000_000, tag, &mut rng);
    }
    assert!(
        mp.coordinated_bans().is_empty(),
        "the reset clears the merged coordinator view"
    );
    for shard in 0..K {
        assert!(
            !mp.shard(shard)
                .expect("sequential")
                .load_balancer()
                .is_banned(proxy),
            "shard {shard} still bans {proxy:?} after the reset"
        );
    }
}

// ---------------------------------------------------------------------
// Dead-replica behavior: a crashed peer must fall out of the proxy
// pool, and a recovered one must be able to rejoin it.
// ---------------------------------------------------------------------

use smp_shard::TimerMux;
use stratus::ShardLoadCoordinator;

/// A replica that dies stops answering load queries, so no shard holds
/// a sample for it — `choose_proxy` must skip it no matter how good its
/// pre-crash numbers were.
#[test]
fn dead_replica_without_samples_is_never_chosen_as_proxy() {
    let mut coord = ShardLoadCoordinator::new();
    // Shards 0 and 1 sampled peers 1 and 3; peer 2 is dead and answered
    // nobody.
    coord.record(0, ReplicaId(1), Some(50));
    coord.record(1, ReplicaId(1), Some(70));
    coord.record(0, ReplicaId(3), Some(20));
    coord.record(1, ReplicaId(3), Some(90));
    let candidates = [ReplicaId(1), ReplicaId(2), ReplicaId(3)];
    // Peer 1's worst load (70) beats peer 3's (90); peer 2 is unsampled.
    assert_eq!(coord.choose_proxy(&candidates), Some(ReplicaId(1)));
    assert_eq!(coord.aggregated_load(ReplicaId(2)), None);
}

/// A peer that died *after* reporting attractive numbers is fenced by a
/// direct ban (the policy layer's crash verdict) until it recovers, at
/// which point fresh samples plus an unban restore it to the pool.
#[test]
fn crashed_proxy_is_fenced_by_ban_and_rejoins_after_recovery() {
    let mut coord = ShardLoadCoordinator::new();
    coord.record(0, ReplicaId(1), Some(10));
    coord.record(0, ReplicaId(2), Some(500));
    let candidates = [ReplicaId(1), ReplicaId(2)];
    assert_eq!(coord.choose_proxy(&candidates), Some(ReplicaId(1)));

    // Peer 1 crashes: its stale sample still looks best, so the crash
    // verdict must fence it explicitly.
    coord.ban(ReplicaId(1));
    assert_eq!(coord.choose_proxy(&candidates), Some(ReplicaId(2)));
    assert_eq!(coord.banned(), vec![ReplicaId(1)]);

    // Recovery: the replica rejoins, reports fresh load, and the ban is
    // lifted — it is immediately eligible again.
    coord.unban(ReplicaId(1));
    coord.record(0, ReplicaId(1), Some(30));
    assert_eq!(coord.choose_proxy(&candidates), Some(ReplicaId(1)));
}

/// A peer that any shard saw busy is skipped even if another shard holds
/// a healthy sample — the dying replica's last gasp must not keep it in
/// the pool.
#[test]
fn peer_busy_on_any_shard_is_skipped() {
    let mut coord = ShardLoadCoordinator::new();
    coord.record(0, ReplicaId(1), Some(40));
    coord.record(1, ReplicaId(1), None); // shard 1 saw it wedged
    coord.record(0, ReplicaId(2), Some(400));
    assert_eq!(coord.aggregated_load(ReplicaId(1)), Some(None));
    assert_eq!(
        coord.choose_proxy(&[ReplicaId(1), ReplicaId(2)]),
        Some(ReplicaId(2))
    );
}

/// Crash-recovery rebuilds the timer multiplexer from scratch: outer
/// tags armed by the previous incarnation must not resolve against the
/// reborn mux, and re-armed inner timers get fresh registrations.
#[test]
fn rebuilt_timer_mux_owes_nothing_to_the_previous_incarnation() {
    let mut mux = TimerMux::new();
    let stale: Vec<_> = (0..8).map(|i| mux.arm((i % 2) as u16, 100 + i)).collect();
    assert_eq!(mux.armed(), 8);

    // Crash: the recovering replica constructs a fresh mux (pre-crash
    // wall-clock timers die with the process).
    let mut mux = TimerMux::new();
    assert_eq!(mux.armed(), 0);

    // Re-arm one inner timer, then replay every stale outer tag a
    // zombie callback might still hold: only the new registration may
    // resolve, and only to the new (shard, inner) pair.
    let fresh = mux.arm(1, 100);
    for &tag in &stale {
        let resolved = mux.fire(tag);
        if tag == fresh {
            assert_eq!(resolved, Some((1, 100)));
        } else {
            assert_eq!(
                resolved, None,
                "stale outer tag {tag} resolved after rebuild"
            );
        }
    }
    assert_eq!(mux.fire(fresh), None, "one-shot across the replay");
}
