//! Tests of the sharded mempool: router determinism and coverage (uniform
//! and Zipf workloads), cross-shard payload assembly under the byte
//! budget, fill aggregation, the single-shard pass-through, shard-aware
//! batch sizing, and sequential/parallel executor equivalence.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_mempool::{Dest, FillStatus, Mempool, MempoolEvent, SimpleSmp, SmpMsg};
use smp_shard::{per_shard_config, ShardRouter, ShardedMempool, ShardedMsg, TimerMux};
use smp_types::{
    BlockId, ClientId, MempoolConfig, MicroblockId, Payload, Proposal, ReplicaId, SystemConfig,
    Transaction, View, WireSize,
};
use smp_workload::ZipfWeights;
use std::collections::HashSet;

fn tx(client: u32, seq: u64) -> Transaction {
    Transaction::synthetic(ClientId(client), seq, 128, 0)
}

/// A system whose microblocks seal after 4 transactions (4 × 128 B).
fn small_batch_system(shards: usize) -> SystemConfig {
    SystemConfig::new(4)
        .with_shards(shards)
        .with_mempool(MempoolConfig {
            batch_size_bytes: 512,
            tx_payload_bytes: 128,
            ..MempoolConfig::default()
        })
}

fn sharded_simple(sys: &SystemConfig, me: u32) -> ShardedMempool<SimpleSmp> {
    ShardedMempool::from_system(sys, me as u64, |_, shard_sys| {
        SimpleSmp::new(shard_sys, ReplicaId(me))
    })
}

proptest! {
    #[test]
    fn routing_is_deterministic_and_in_range(
        client in any::<u32>(),
        seq in any::<u64>(),
        k in 1usize..9,
    ) {
        let router = ShardRouter::new(k);
        let t = tx(client, seq);
        let shard = router.shard_of_tx(&t);
        prop_assert!(shard < k);
        prop_assert_eq!(shard, router.shard_of_tx(&t));
        // A different router instance with the same shard count agrees.
        prop_assert_eq!(shard, ShardRouter::new(k).shard_of_tx(&t));
    }

    #[test]
    fn partition_is_total_and_consistent(
        seqs in proptest::collection::vec((any::<u32>(), any::<u64>()), 0..200),
        k in 1usize..6,
    ) {
        let router = ShardRouter::new(k);
        let txs: Vec<Transaction> = seqs.iter().map(|(c, s)| tx(*c, *s)).collect();
        let groups = router.partition(txs.clone());
        let total: usize = groups.iter().map(|(_, g)| g.len()).sum();
        prop_assert_eq!(total, txs.len());
        for (shard, group) in &groups {
            prop_assert!(*shard < k);
            for t in group {
                prop_assert_eq!(router.shard_of_tx(t), *shard);
            }
        }
    }
}

#[test]
fn uniform_workload_covers_all_shards_evenly() {
    for k in [2usize, 4, 8] {
        let router = ShardRouter::new(k);
        let mut counts = vec![0usize; k];
        let total = 8_000;
        for seq in 0..total {
            counts[router.shard_of_tx(&tx((seq % 97) as u32, seq))] += 1;
        }
        let mean = total as usize / k;
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                *count > mean / 2 && *count < mean * 2,
                "shard {shard} of {k} got {count} txs (mean {mean}) — routing is skewed"
            );
        }
    }
}

#[test]
fn zipf_workload_still_covers_all_shards() {
    // Client popularity follows Zipf(1.0) over 64 clients — the workload
    // the paper's DLB experiments use.  Routing hashes the whole tx id
    // (client and sequence number), so even a single dominant client's
    // transactions must spread across every shard.
    let clients = 64;
    let weights = ZipfWeights::zipf1(clients);
    let total = 8_000usize;
    for k in [2usize, 4, 8] {
        let router = ShardRouter::new(k);
        let mut counts = vec![0usize; k];
        for client in 0..clients {
            let n = (weights.share(client) * total as f64).round() as u64;
            for seq in 0..n {
                counts[router.shard_of_tx(&tx(client as u32, seq))] += 1;
            }
        }
        let produced: usize = counts.iter().sum();
        let mean = produced / k;
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                *count > mean / 2 && *count < mean * 2,
                "shard {shard} of {k} got {count} txs (mean {mean}) under Zipf load"
            );
        }
    }
}

#[test]
fn single_hot_client_covers_all_shards() {
    // Degenerate skew: every transaction from one client.
    let router = ShardRouter::new(4);
    let mut covered = HashSet::new();
    for seq in 0..1_000 {
        covered.insert(router.shard_of_tx(&tx(7, seq)));
    }
    assert_eq!(
        covered.len(),
        4,
        "one client's txs should still spread over all shards"
    );
}

/// Feeds enough transactions to seal several microblocks in every shard
/// and returns the mempool plus the total refs created.
fn fill_shards(mp: &mut ShardedMempool<SimpleSmp>, rng: &mut SmallRng, txs_total: u64) {
    let txs: Vec<Transaction> = (0..txs_total).map(|s| tx((s % 13) as u32, s)).collect();
    let _ = mp.on_client_txs(0, txs, rng);
}

fn collect_ref_ids(payload: &Payload, into: &mut Vec<MicroblockId>) {
    match payload {
        Payload::Refs(refs) => into.extend(refs.iter().map(|r| r.id)),
        Payload::Sharded(groups) => {
            for (_, p) in groups {
                collect_ref_ids(p, into);
            }
        }
        _ => {}
    }
}

#[test]
fn cross_shard_payloads_respect_the_byte_budget() {
    let mut sys = small_batch_system(4);
    // An unproven ref is 40 B on the wire; budget five-ish refs.
    sys.mempool.max_proposal_bytes = 220;
    let mut rng = SmallRng::seed_from_u64(1);
    let mut mp = sharded_simple(&sys, 0);
    fill_shards(&mut mp, &mut rng, 256);

    let created: u64 = mp.shard_stats().iter().map(|s| s.created_microblocks).sum();
    assert!(created >= 16, "expected many microblocks, got {created}");

    let mut seen: Vec<MicroblockId> = Vec::new();
    let mut payloads = 0;
    loop {
        let payload = mp.make_payload(1_000 + payloads);
        if payload.is_empty() {
            break;
        }
        assert!(
            payload.wire_size() <= sys.mempool.max_proposal_bytes,
            "payload of {} B exceeds the {} B budget",
            payload.wire_size(),
            sys.mempool.max_proposal_bytes
        );
        collect_ref_ids(&payload, &mut seen);
        payloads += 1;
        assert!(payloads < 10_000, "payload assembly does not terminate");
    }
    assert!(payloads > 1, "budget should force multiple proposals");
    assert_eq!(
        mp.carried_items(),
        0,
        "draining to empty must clear the carry queue"
    );
    // Every created microblock is proposed exactly once.
    assert_eq!(seen.len() as u64, created);
    let unique: HashSet<_> = seen.iter().collect();
    assert_eq!(
        unique.len(),
        seen.len(),
        "no microblock may be referenced twice"
    );
}

#[test]
fn round_robin_assembly_interleaves_shards() {
    let sys = small_batch_system(4);
    let mut rng = SmallRng::seed_from_u64(2);
    let mut mp = sharded_simple(&sys, 0);
    fill_shards(&mut mp, &mut rng, 256);
    let payload = mp.make_payload(1_000);
    match &payload {
        Payload::Sharded(groups) => {
            let shards: HashSet<u16> = groups.iter().map(|(s, _)| *s).collect();
            assert_eq!(
                shards.len(),
                4,
                "an unbudgeted payload should draw from every shard"
            );
        }
        other => panic!("expected a sharded payload, got {other:?}"),
    }
}

#[test]
fn fill_aggregates_across_shards_and_reemits_ready_once() {
    let sys = small_batch_system(2);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut proposer = sharded_simple(&sys, 0);
    let mut follower = sharded_simple(&sys, 1);

    // The proposer seals microblocks in both shards and broadcasts them;
    // capture the dissemination messages without delivering them.
    let fx = proposer.on_client_txs(0, (0..64).map(|s| tx(1, s)).collect(), &mut rng);
    let broadcasts: Vec<ShardedMsg<SmpMsg>> = fx
        .msgs
        .into_iter()
        .filter(|(dest, _)| *dest == Dest::AllButSelf)
        .map(|(_, m)| m)
        .collect();
    assert!(!broadcasts.is_empty());

    let payload = proposer.make_payload(100);
    let groups: Vec<u16> = match &payload {
        Payload::Sharded(groups) => groups.iter().map(|(s, _)| *s).collect(),
        other => panic!("expected sharded payload, got {other:?}"),
    };
    assert_eq!(groups.len(), 2, "both shards should contribute refs");
    let proposal = Proposal::new(View(1), 1, BlockId::GENESIS, ReplicaId(0), payload, true);

    // The follower has seen none of the data: every shard must wait.
    let (status, _fx) = follower.on_proposal(200, &proposal, &mut rng);
    let missing = match status {
        FillStatus::MustWait(ids) => ids,
        other => panic!("expected MustWait, got {other:?}"),
    };
    assert!(!missing.is_empty());

    // Deliver the shard-0 microblocks first: the proposal must NOT become
    // ready while shard 1 is still missing data.
    let mut ready_events = 0;
    for shard in [0u16, 1u16] {
        for msg in broadcasts.iter().filter(|m| m.shard == shard) {
            let fx = follower.on_message(300, ReplicaId(0), msg.clone(), &mut rng);
            for ev in fx.events {
                if let MempoolEvent::ProposalReady { proposal: id } = ev {
                    assert_eq!(id, proposal.id);
                    ready_events += 1;
                }
            }
        }
        if shard == 0 {
            assert_eq!(
                ready_events, 0,
                "proposal must not be ready before the last shard fills"
            );
        }
    }
    assert_eq!(ready_events, 1, "exactly one aggregated ProposalReady");
}

#[test]
fn stats_roll_up_across_shards() {
    let sys = small_batch_system(4);
    let mut rng = SmallRng::seed_from_u64(4);
    let mut mp = sharded_simple(&sys, 0);
    fill_shards(&mut mp, &mut rng, 128);
    let per_shard = mp.shard_stats();
    let total = mp.stats();
    assert_eq!(per_shard.len(), 4);
    assert_eq!(
        total.created_microblocks,
        per_shard.iter().map(|s| s.created_microblocks).sum::<u64>()
    );
    assert_eq!(
        total.stored_microblocks,
        per_shard
            .iter()
            .map(|s| s.stored_microblocks)
            .sum::<usize>()
    );
    assert!(total.created_microblocks > 0);
    assert!(
        per_shard
            .iter()
            .filter(|s| s.created_microblocks > 0)
            .count()
            >= 2,
        "several shards should have sealed microblocks"
    );
}

#[test]
fn per_shard_batch_budgets_sum_to_the_configured_total() {
    // Regression: `ShardedMempool::new` used to hand every shard the full
    // `batch_size_bytes`, so a k-sharded replica sealed k times the
    // configured batch volume.
    let sys = SystemConfig::new(4); // 128 KiB batches, 128 B txs
    let total = sys.mempool.batch_size_bytes;
    for k in [1usize, 2, 4, 8] {
        let shard_sys = per_shard_config(&sys, k);
        assert_eq!(
            shard_sys.mempool.batch_size_bytes * k,
            total,
            "per-shard budgets at k={k} must sum to the configured total"
        );
    }
    // The constructor hands the divided budget to every backend it builds.
    let mut seen: Vec<usize> = Vec::new();
    let _ = ShardedMempool::new(&sys, 4, |_, shard_sys| {
        seen.push(shard_sys.mempool.batch_size_bytes);
        SimpleSmp::new(shard_sys, ReplicaId(0))
    });
    assert_eq!(seen.len(), 4);
    assert_eq!(seen.iter().sum::<usize>(), total);
    // Min-clamp: the division never starves a shard below one transaction.
    let tiny = SystemConfig::new(4).with_mempool(MempoolConfig {
        batch_size_bytes: 512,
        tx_payload_bytes: 128,
        ..MempoolConfig::default()
    });
    let clamped = per_shard_config(&tiny, 16);
    assert_eq!(
        clamped.mempool.batch_size_bytes, 128,
        "per-shard budget is clamped to one transaction payload"
    );
}

#[test]
fn timer_mux_never_collides_under_concurrent_shard_arms() {
    // Parallel shard workers arm timers concurrently (serialised at the
    // wrapper, but interleaved in arbitrary order).  Hammer the mux from
    // four threads and verify global outer-tag uniqueness plus exact
    // (shard, inner-tag) resolution afterwards.
    use std::sync::{Arc, Mutex};
    let mux = Arc::new(Mutex::new(TimerMux::new()));
    let handles: Vec<_> = (0..4u16)
        .map(|shard| {
            let mux = Arc::clone(&mux);
            std::thread::spawn(move || {
                (0..1_000u64)
                    .map(|inner| (mux.lock().unwrap().arm(shard, inner), inner))
                    .collect::<Vec<(u64, u64)>>()
            })
        })
        .collect();
    let mut armed: Vec<(u64, u16, u64)> = Vec::new();
    for (shard, handle) in handles.into_iter().enumerate() {
        for (outer, inner) in handle.join().expect("arm thread panicked") {
            armed.push((outer, shard as u16, inner));
        }
    }
    let unique: HashSet<u64> = armed.iter().map(|(outer, ..)| *outer).collect();
    assert_eq!(unique.len(), armed.len(), "outer timer tags collided");
    let mux = Arc::try_unwrap(mux).expect("all threads joined");
    let mut mux = mux.into_inner().expect("mux lock poisoned");
    assert_eq!(mux.armed(), 4_000);
    for (outer, shard, inner) in armed {
        assert_eq!(
            mux.fire(outer),
            Some((shard, inner)),
            "outer tag resolved to the wrong shard arm"
        );
    }
    assert_eq!(mux.armed(), 0);
}

/// Drives one wrapper through ingest → propose → fill → commit and
/// captures everything observable.
fn drive_wrapper(
    mp: &mut ShardedMempool<SimpleSmp>,
    rng: &mut SmallRng,
) -> (Vec<String>, Vec<Payload>) {
    let mut effects_log = Vec::new();
    let mut payloads = Vec::new();
    for round in 0..4u64 {
        let txs: Vec<Transaction> = (0..48)
            .map(|s| tx((s % 7) as u32, round * 100 + s))
            .collect();
        let fx = mp.on_client_txs(round * 1_000, txs, rng);
        effects_log.push(format!("{:?}|{:?}|{:?}", fx.msgs, fx.timers, fx.events));
        let payload = mp.make_payload(round * 1_000 + 500);
        let proposal = Proposal::new(
            View(round),
            round,
            BlockId::GENESIS,
            ReplicaId(0),
            payload.clone(),
            true,
        );
        let (status, fx) = mp.on_proposal(round * 1_000 + 600, &proposal, rng);
        effects_log.push(format!("{status:?}|{:?}", fx.msgs.len()));
        let fx = mp.on_commit(round * 1_000 + 700, &proposal);
        effects_log.push(format!("{:?}", fx.events));
        payloads.push(payload);
    }
    (effects_log, payloads)
}

#[test]
fn parallel_wrapper_is_byte_identical_to_sequential_wrapper() {
    // Exercise real worker threads even on single-core hosts.
    smp_shard::force_parallel_workers(true);
    for k in [1usize, 2, 4] {
        let sys = small_batch_system(k);
        let salt = 7u64;
        let mut seq = ShardedMempool::sequential(&sys, k, salt, |_, shard_sys| {
            SimpleSmp::new(shard_sys, ReplicaId(0))
        });
        let mut par = ShardedMempool::parallel(&sys, k, salt, |_, shard_sys| {
            SimpleSmp::new(shard_sys, ReplicaId(0))
        });
        assert!(k == 1 || par.is_parallel());
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        let (log_a, payloads_a) = drive_wrapper(&mut seq, &mut rng_a);
        let (log_b, payloads_b) = drive_wrapper(&mut par, &mut rng_b);
        assert_eq!(log_a, log_b, "k={k}: executor effects diverged");
        assert_eq!(payloads_a, payloads_b, "k={k}: proposals diverged");
        assert_eq!(
            seq.shard_stats(),
            par.shard_stats(),
            "k={k}: stats diverged"
        );
    }
}

#[test]
fn one_shard_is_a_transparent_passthrough() {
    let sys = small_batch_system(1);
    let mut rng_a = SmallRng::seed_from_u64(5);
    let mut rng_b = SmallRng::seed_from_u64(5);
    let mut bare = SimpleSmp::new(&sys, ReplicaId(0));
    let mut wrapped = sharded_simple(&sys, 0);

    let txs: Vec<Transaction> = (0..32).map(|s| tx(2, s)).collect();
    let fx_bare = bare.on_client_txs(0, txs.clone(), &mut rng_a);
    let fx_wrapped = wrapped.on_client_txs(0, txs, &mut rng_b);

    assert_eq!(fx_bare.msgs.len(), fx_wrapped.msgs.len());
    for ((d1, m1), (d2, m2)) in fx_bare.msgs.iter().zip(fx_wrapped.msgs.iter()) {
        assert_eq!(d1, d2);
        assert_eq!(m2.shard, 0);
        assert_eq!(
            m1.wire_size(),
            m2.wire_size(),
            "the envelope must add no wire bytes"
        );
    }
    // Identical payloads: no Sharded wrapper in the single-shard case.
    let p_bare = bare.make_payload(100);
    let p_wrapped = wrapped.make_payload(100);
    assert_eq!(p_bare, p_wrapped);
}
