//! Property-based tests for core data types.

use proptest::prelude::*;
use smp_types::{
    ids::{ClientId, MicroblockId, ReplicaId, TxId, View},
    Microblock, Payload, Proposal, SystemConfig, Transaction, WireSize, TX_OVERHEAD_BYTES,
};

fn arb_txs(max: usize) -> impl Strategy<Value = Vec<Transaction>> {
    proptest::collection::vec((any::<u32>(), any::<u64>(), 1usize..512), 0..max).prop_map(|v| {
        v.into_iter()
            .map(|(c, s, len)| Transaction::synthetic(ClientId(c), s, len, 0))
            .collect()
    })
}

proptest! {
    #[test]
    fn transaction_wire_size_is_payload_plus_overhead(c in any::<u32>(), s in any::<u64>(), len in 0usize..4096) {
        let tx = Transaction::synthetic(ClientId(c), s, len, 0);
        prop_assert_eq!(tx.wire_size(), TX_OVERHEAD_BYTES + len);
    }

    #[test]
    fn microblock_ids_are_content_addressed(txs in arb_txs(32), creator in 0u32..64) {
        let a = Microblock::seal(ReplicaId(creator), txs.clone(), 0);
        let b = Microblock::seal(ReplicaId(creator), txs.clone(), 999);
        prop_assert_eq!(a.id, b.id);
        let ids: Vec<TxId> = txs.iter().map(|t| t.id).collect();
        prop_assert_eq!(a.id, MicroblockId::derive(ReplicaId(creator), &ids));
    }

    #[test]
    fn microblock_wire_size_bounds(txs in arb_txs(64), creator in 0u32..8) {
        let mb = Microblock::seal(ReplicaId(creator), txs, 0);
        prop_assert!(mb.wire_size() >= mb.payload_bytes());
        prop_assert!(mb.wire_size() <= mb.payload_bytes() + 48 + mb.len() * TX_OVERHEAD_BYTES);
    }

    #[test]
    fn proposal_ids_are_unique_across_views(view_a in 0u64..10_000, view_b in 0u64..10_000, txs in arb_txs(8)) {
        prop_assume!(view_a != view_b);
        let pa = Proposal::new(View(view_a), 1, smp_types::BlockId::GENESIS, ReplicaId(0), Payload::inline(txs.clone()), true);
        let pb = Proposal::new(View(view_b), 1, smp_types::BlockId::GENESIS, ReplicaId(0), Payload::inline(txs), true);
        prop_assert_ne!(pa.id, pb.id);
    }

    #[test]
    fn leader_rotation_is_within_bounds(view in any::<u64>(), n in 4usize..500) {
        let leader = View(view).leader(n);
        prop_assert!(leader.index() < n);
    }

    #[test]
    fn system_config_is_always_valid(n in 4usize..500) {
        let c = SystemConfig::new(n);
        prop_assert!(c.is_valid());
        prop_assert!(c.n > 3 * c.f);
        // f is maximal: adding one more fault would violate the bound.
        prop_assert!(c.n <= 3 * (c.f + 1));
    }

    #[test]
    fn pab_quorum_clamp_stays_in_range(n in 4usize..500, q in 0usize..2000) {
        let c = SystemConfig::new(n).with_pab_quorum(q);
        prop_assert!(c.pab_quorum > c.f);
        prop_assert!(c.pab_quorum <= 2 * c.f + 1);
    }
}
