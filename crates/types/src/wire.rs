//! Wire-size modelling.
//!
//! The paper's bandwidth analysis (Table III, Appendix A/B) depends on the
//! relative sizes of transactions (~128 B payload), microblocks (tens of
//! kilobytes), proposals (ids + proofs vs. full data), votes and acks
//! (~100 B).  Every message type in the reproduction implements
//! [`WireSize`] using the constants below so bandwidth accounting is
//! consistent across protocols.

/// Per-transaction framing overhead in bytes (id + client + sequence).
pub const TX_OVERHEAD_BYTES: usize = 40;

/// Header bytes of a microblock (id, creator, count, timestamp).
pub const MICROBLOCK_HEADER_BYTES: usize = 48;

/// Header bytes of a proposal/block (view, parent hash, payload root,
/// proposer, height).
pub const PROPOSAL_HEADER_BYTES: usize = 120;

/// Size of a consensus vote message (view, block hash, signature), matching
/// the ~100 B figure quoted in the paper's introduction.
pub const VOTE_BYTES: usize = 108;

/// Size of a PAB acknowledgement (microblock id + signature share).
pub const ACK_BYTES: usize = 100;

/// Size of a quorum certificate reference embedded in a proposal header.
pub const QC_BYTES: usize = 96;

/// Size of a load-balancing query / info message.
pub const LB_QUERY_BYTES: usize = 48;

/// Size of a fetch request (microblock id + requester).
pub const FETCH_REQUEST_BYTES: usize = 44;

/// Types that know how many bytes they occupy on the (simulated) wire.
pub trait WireSize {
    /// Number of bytes this value serializes to.
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        self.iter().map(WireSize::wire_size).sum()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        self.as_ref().map_or(0, WireSize::wire_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(usize);
    impl WireSize for Fixed {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn vec_wire_size_sums_elements() {
        let v = vec![Fixed(3), Fixed(4), Fixed(5)];
        assert_eq!(v.wire_size(), 12);
    }

    #[test]
    fn option_wire_size() {
        assert_eq!(Some(Fixed(7)).wire_size(), 7);
        assert_eq!(Option::<Fixed>::None.wire_size(), 0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants, clippy::manual_range_contains)]
    fn vote_is_roughly_100_bytes() {
        assert!(VOTE_BYTES >= 90 && VOTE_BYTES <= 128);
    }
}
