//! Microblocks: batches of transactions disseminated by the shared mempool.

use crate::ids::{MicroblockId, ReplicaId, TxId};
use crate::time::SimTime;
use crate::transaction::Transaction;
use crate::wire::{WireSize, MICROBLOCK_HEADER_BYTES};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A batch of transactions created by one replica (Section III-D).
///
/// Because each client sends every transaction to exactly one replica, the
/// microblocks produced by different replicas are disjoint; the microblock
/// id is derived from the contained transaction ids and the creator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Microblock {
    /// Content-derived identifier.
    pub id: MicroblockId,
    /// Replica that batched the transactions.
    pub creator: ReplicaId,
    /// The batched transactions (shared so that cloning a microblock for
    /// broadcast to hundreds of replicas does not copy transaction data).
    pub txs: Arc<Vec<Transaction>>,
    /// Simulated time at which the batch was sealed.
    pub created_at: SimTime,
    /// Replica that actually disseminated the batch (differs from
    /// `creator` when a DLB proxy forwarded it on the creator's behalf).
    pub disseminator: ReplicaId,
}

impl Microblock {
    /// Seals a batch of transactions into a microblock.
    pub fn seal(creator: ReplicaId, txs: Vec<Transaction>, created_at: SimTime) -> Self {
        let tx_ids: Vec<TxId> = txs.iter().map(|t| t.id).collect();
        Microblock {
            id: MicroblockId::derive(creator, &tx_ids),
            creator,
            txs: Arc::new(txs),
            created_at,
            disseminator: creator,
        }
    }

    /// Number of transactions in the batch.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Ids of the contained transactions.
    pub fn tx_ids(&self) -> impl Iterator<Item = TxId> + '_ {
        self.txs.iter().map(|t| t.id)
    }

    /// Total payload bytes carried by the batch (excluding framing).
    pub fn payload_bytes(&self) -> usize {
        self.txs.iter().map(|t| t.payload_len).sum()
    }
}

impl WireSize for Microblock {
    fn wire_size(&self) -> usize {
        MICROBLOCK_HEADER_BYTES + self.txs.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::wire::TX_OVERHEAD_BYTES;

    fn mk_txs(n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::synthetic(ClientId(0), i as u64, 128, 0))
            .collect()
    }

    #[test]
    fn seal_derives_id_from_contents() {
        let a = Microblock::seal(ReplicaId(0), mk_txs(3), 10);
        let b = Microblock::seal(ReplicaId(0), mk_txs(3), 20);
        let c = Microblock::seal(ReplicaId(1), mk_txs(3), 10);
        // Same creator + same tx ids => same microblock id (time is not part
        // of the id), different creator => different id.
        assert_eq!(a.id, b.id);
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn wire_size_accounts_for_all_txs() {
        let mb = Microblock::seal(ReplicaId(0), mk_txs(10), 0);
        assert_eq!(
            mb.wire_size(),
            MICROBLOCK_HEADER_BYTES + 10 * (TX_OVERHEAD_BYTES + 128)
        );
        assert_eq!(mb.payload_bytes(), 1280);
        assert_eq!(mb.len(), 10);
        assert!(!mb.is_empty());
    }

    #[test]
    fn empty_microblock_is_empty() {
        let mb = Microblock::seal(ReplicaId(0), vec![], 0);
        assert!(mb.is_empty());
        assert_eq!(mb.wire_size(), MICROBLOCK_HEADER_BYTES);
    }

    #[test]
    fn disseminator_defaults_to_creator() {
        let mb = Microblock::seal(ReplicaId(5), mk_txs(1), 0);
        assert_eq!(mb.disseminator, ReplicaId(5));
    }
}
