//! Simulated time.
//!
//! The whole reproduction runs on a logical clock measured in integer
//! microseconds; this module provides the alias and conversion helpers so
//! all crates agree on the unit.

/// Simulated time or duration, in microseconds.
pub type SimTime = u64;

/// Microseconds per millisecond.
pub const MICROS_PER_MS: SimTime = 1_000;

/// Microseconds per second.
pub const MICROS_PER_SEC: SimTime = 1_000_000;

/// Converts milliseconds to [`SimTime`].
pub const fn ms(v: u64) -> SimTime {
    v * MICROS_PER_MS
}

/// Converts seconds to [`SimTime`].
pub const fn secs(v: u64) -> SimTime {
    v * MICROS_PER_SEC
}

/// Converts a [`SimTime`] to fractional milliseconds.
pub fn as_ms(t: SimTime) -> f64 {
    t as f64 / MICROS_PER_MS as f64
}

/// Converts a [`SimTime`] to fractional seconds.
pub fn as_secs(t: SimTime) -> f64 {
    t as f64 / MICROS_PER_SEC as f64
}

/// Converts fractional microseconds (e.g. from the CPU cost model) to a
/// [`SimTime`], rounding up so nonzero costs never vanish.
pub fn from_micros_f64(us: f64) -> SimTime {
    if us <= 0.0 {
        0
    } else {
        us.ceil() as SimTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(ms(5), 5_000);
        assert_eq!(secs(2), 2_000_000);
        assert!((as_ms(1_500) - 1.5).abs() < 1e-12);
        assert!((as_secs(2_500_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn from_micros_rounds_up() {
        assert_eq!(from_micros_f64(0.0), 0);
        assert_eq!(from_micros_f64(-3.0), 0);
        assert_eq!(from_micros_f64(0.2), 1);
        assert_eq!(from_micros_f64(10.0), 10);
    }
}
