//! Identifier newtypes.
//!
//! Identifiers are small copyable newtypes so they can be passed around the
//! simulation freely; content-addressed identifiers wrap a
//! [`smp_crypto::Digest`].

use serde::{Deserialize, Serialize};
use smp_crypto::Digest;
use std::fmt;

/// Index of a replica in the system (`0..N`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// Returns the underlying index as a `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifier of an external client issuing transactions.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

/// Content-derived identifier of a transaction.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TxId(pub Digest);

impl TxId {
    /// Derives a transaction id from the issuing client and a per-client
    /// sequence number.
    pub fn derive(client: ClientId, seq: u64) -> Self {
        let mut h = smp_crypto::Hasher::with_domain(0x5458_4944); // "TXID"
        h.update_u64(client.0 as u64);
        h.update_u64(seq);
        TxId(h.finalize())
    }
}

/// Content-derived identifier of a microblock (batch of transactions).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MicroblockId(pub Digest);

thread_local! {
    static MB_ID_DERIVATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of payload-proportional microblock-id derivations performed on
/// this thread so far.
///
/// [`MicroblockId::derive`] is the only hash whose cost scales with batch
/// size, and the dissemination planes are built so it runs exactly once
/// per payload — at [`Microblock::seal`](crate::Microblock::seal) on the
/// creator, and once more at the codec boundary when a body crosses a real
/// socket (the decoder deliberately re-derives rather than trusting the
/// wire).  Regression tests diff this counter around a full
/// seal→gossip→fill→commit flow to prove the gossip/fill path never
/// re-hashes a payload.
pub fn mb_id_derivations() -> u64 {
    MB_ID_DERIVATIONS.with(|c| c.get())
}

impl MicroblockId {
    /// Derives a microblock id from the ids of the transactions it contains
    /// and its creator, as described in Section III-D of the paper.
    pub fn derive(creator: ReplicaId, tx_ids: &[TxId]) -> Self {
        MB_ID_DERIVATIONS.with(|c| c.set(c.get() + 1));
        let mut h = smp_crypto::Hasher::with_domain(0x4d42_4944); // "MBID"
        h.update_u64(creator.0 as u64);
        for tx in tx_ids {
            h.update_digest(&tx.0);
        }
        MicroblockId(h.finalize())
    }

    /// The digest wrapped by this id.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

/// Identifier of a consensus block / proposal (hash of the header).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub Digest);

impl BlockId {
    /// The zero sentinel id (parent of genesis).
    pub const GENESIS: BlockId = BlockId(Digest::ZERO);

    /// The digest wrapped by this id.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

/// A consensus view (or round / epoch, depending on the protocol).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct View(pub u64);

impl View {
    /// The next view.
    pub fn next(self) -> View {
        View(self.0 + 1)
    }

    /// Returns the designated leader for this view under round-robin
    /// rotation over `n` replicas.
    pub fn leader(self, n: usize) -> ReplicaId {
        ReplicaId((self.0 % n as u64) as u32)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_ids_are_unique_per_client_and_seq() {
        let a = TxId::derive(ClientId(1), 0);
        let b = TxId::derive(ClientId(1), 1);
        let c = TxId::derive(ClientId(2), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, TxId::derive(ClientId(1), 0));
    }

    #[test]
    fn microblock_id_depends_on_contents_and_creator() {
        let txs: Vec<TxId> = (0..5).map(|i| TxId::derive(ClientId(0), i)).collect();
        let a = MicroblockId::derive(ReplicaId(0), &txs);
        let b = MicroblockId::derive(ReplicaId(1), &txs);
        let c = MicroblockId::derive(ReplicaId(0), &txs[..4]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, MicroblockId::derive(ReplicaId(0), &txs));
    }

    #[test]
    fn view_leader_rotates_round_robin() {
        assert_eq!(View(0).leader(4), ReplicaId(0));
        assert_eq!(View(1).leader(4), ReplicaId(1));
        assert_eq!(View(4).leader(4), ReplicaId(0));
        assert_eq!(View(7).leader(4), ReplicaId(3));
    }

    #[test]
    fn view_next_increments() {
        assert_eq!(View(3).next(), View(4));
    }

    #[test]
    fn replica_id_display() {
        assert_eq!(format!("{}", ReplicaId(12)), "R12");
        assert_eq!(format!("{:?}", ReplicaId(12)), "R12");
    }
}
