//! System configuration.
//!
//! [`SystemConfig`] captures the deployment parameters that every crate
//! needs to agree on: the replica count `N`, the fault bound `f`
//! (`N >= 3f + 1`), quorum sizes, the key-derivation seed, and the network
//! preset (LAN vs WAN as used in Section VII-A).  [`MempoolConfig`]
//! captures the batching parameters studied in Figure 6.

use crate::ids::ReplicaId;
use crate::time::{SimTime, MICROS_PER_MS};
use serde::{Deserialize, Serialize};

/// Network environments evaluated in the paper (Section VII-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkPreset {
    /// "National" deployment: up to 3 Gb/s per replica, < 10 ms RTT.
    Lan,
    /// "Regional" deployment: 100 Mb/s per replica, 100 ms RTT (NetEm).
    Wan,
    /// Custom environment.
    Custom {
        /// Per-replica outbound bandwidth in bits per second.
        bandwidth_bps: u64,
        /// One-way propagation delay in microseconds.
        one_way_delay_us: SimTime,
        /// Uniform jitter bound in microseconds.
        jitter_us: SimTime,
    },
}

impl NetworkPreset {
    /// Per-replica outbound bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> u64 {
        match self {
            NetworkPreset::Lan => 3_000_000_000,
            NetworkPreset::Wan => 100_000_000,
            NetworkPreset::Custom { bandwidth_bps, .. } => *bandwidth_bps,
        }
    }

    /// One-way propagation delay in microseconds.
    pub fn one_way_delay_us(&self) -> SimTime {
        match self {
            // < 10 ms RTT in the paper's LAN; use 4 ms RTT => 2 ms one-way.
            NetworkPreset::Lan => 2 * MICROS_PER_MS,
            // 100 ms RTT => 50 ms one-way.
            NetworkPreset::Wan => 50 * MICROS_PER_MS,
            NetworkPreset::Custom {
                one_way_delay_us, ..
            } => *one_way_delay_us,
        }
    }

    /// Uniform jitter bound (added on top of the one-way delay).
    pub fn jitter_us(&self) -> SimTime {
        match self {
            NetworkPreset::Lan => 300,
            NetworkPreset::Wan => 2 * MICROS_PER_MS,
            NetworkPreset::Custom { jitter_us, .. } => *jitter_us,
        }
    }
}

/// How the per-shard dissemination pipelines of a sharded mempool are
/// driven (`smp-shard`).
///
/// The sequential executor runs every shard inline on the replica's
/// thread (the deterministic default, and what the discrete-event
/// simulator uses).  The parallel executor gives each shard its own
/// worker thread with a private inbox, merging outputs back in a
/// deterministic order — the two are byte-identical on the same seed
/// (proven by the cross-executor conformance suite in
/// `tests/conformance.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutorKind {
    /// All shards run inline on the calling thread.
    #[default]
    Sequential,
    /// One worker thread per shard (true multi-core dissemination).
    Parallel,
}

impl ExecutorKind {
    /// Stable label for reporting.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutorKind::Sequential => "sequential",
            ExecutorKind::Parallel => "parallel",
        }
    }

    /// Reads the `SMP_EXECUTOR` environment variable
    /// (`sequential`/`parallel`, defaulting to sequential) — the hook the
    /// CI executor matrix uses to run the whole suite under both
    /// executors.
    pub fn from_env() -> Self {
        match std::env::var("SMP_EXECUTOR") {
            Ok(v) => v.parse().unwrap_or_default(),
            Err(_) => ExecutorKind::Sequential,
        }
    }
}

impl std::str::FromStr for ExecutorKind {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sequential" | "seq" => Ok(ExecutorKind::Sequential),
            "parallel" | "par" => Ok(ExecutorKind::Parallel),
            _ => Err(()),
        }
    }
}

/// Commit-derivation mode of the DAG mempool (`smp-dag`, the D-HS rows).
///
/// Both modes share the same DAG: blocks are consistently broadcast,
/// acks piggyback on later blocks, and a batch's *support pattern* is the
/// set of distinct replicas whose blocks acknowledged it.  The mode only
/// decides when a batch becomes proposable and what its reference proves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DagMode {
    /// Narwhal-strength availability: a batch becomes proposable only
    /// once `2f + 1` distinct acks form a certificate, which is embedded
    /// in the proposal reference and re-verified by every replica.
    #[default]
    Certified,
    /// Uncertified fast path (Mysticeti-style): a batch is proposable on
    /// first delivery; references carry no proof and replicas that miss
    /// the data must fetch it before consensus proceeds.
    FastPath,
}

impl DagMode {
    /// Stable label for reporting.
    pub fn label(&self) -> &'static str {
        match self {
            DagMode::Certified => "certified",
            DagMode::FastPath => "fast-path",
        }
    }
}

impl std::str::FromStr for DagMode {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "certified" | "cert" => Ok(DagMode::Certified),
            "fast-path" | "fastpath" | "fast" => Ok(DagMode::FastPath),
            _ => Err(()),
        }
    }
}

/// Batching parameters of the mempool (Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MempoolConfig {
    /// Target microblock size in bytes (transactions are batched until the
    /// accumulated payload reaches this size).
    pub batch_size_bytes: usize,
    /// Seal a partial batch after this much time even if the target size
    /// has not been reached (200 ms by default, Section VII-B).
    pub batch_timeout: SimTime,
    /// Transaction payload size in bytes (128 B in the evaluation).
    pub tx_payload_bytes: usize,
    /// Maximum number of microblock references pulled into one proposal
    /// (the paper leaves this unconstrained; `usize::MAX` reproduces that).
    pub max_refs_per_proposal: usize,
    /// Maximum number of inline transactions per native proposal.
    pub max_inline_txs_per_proposal: usize,
    /// Byte budget for a cross-shard proposal payload assembled by
    /// `smp-shard` (content that does not fit is carried over to the next
    /// proposal).  Unsharded mempools do not consult this limit.
    pub max_proposal_bytes: usize,
}

impl MempoolConfig {
    /// Number of transactions that fit in one target-sized microblock.
    pub fn txs_per_batch(&self) -> usize {
        (self.batch_size_bytes / self.tx_payload_bytes).max(1)
    }
}

impl Default for MempoolConfig {
    fn default() -> Self {
        MempoolConfig {
            batch_size_bytes: 128 * 1024,
            batch_timeout: 200 * MICROS_PER_MS,
            tx_payload_bytes: 128,
            max_refs_per_proposal: usize::MAX,
            max_inline_txs_per_proposal: 8_000,
            max_proposal_bytes: 2 * 1024 * 1024,
        }
    }
}

/// Global system configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of replicas `N`.
    pub n: usize,
    /// Byzantine fault bound `f` (defaults to `(N - 1) / 3`).
    pub f: usize,
    /// Seed for key derivation and all simulation randomness.
    pub seed: u64,
    /// PAB availability quorum `q ∈ [f+1, 2f+1]` (Section IV-A).
    pub pab_quorum: usize,
    /// Network environment.
    pub network: NetworkPreset,
    /// Mempool batching parameters.
    pub mempool: MempoolConfig,
    /// View-change / pacemaker timeout.
    pub view_change_timeout: SimTime,
    /// Number of shared-mempool dissemination shards per replica
    /// (`smp-shard`).  `1` disables sharding and runs the backend mempool
    /// unwrapped.
    pub shards: usize,
    /// How the shards are driven: inline on the replica thread
    /// (sequential) or on one worker thread each (parallel).  Irrelevant
    /// when `shards == 1`.
    pub executor: ExecutorKind,
    /// Commit-derivation mode of the DAG mempool (ignored by every other
    /// backend).
    pub dag_mode: DagMode,
}

impl SystemConfig {
    /// Creates a configuration for `n` replicas with the maximum tolerated
    /// number of Byzantine faults and defaults for everything else.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 4,
            "BFT requires at least 4 replicas (N >= 3f + 1 with f >= 1)"
        );
        let f = (n - 1) / 3;
        SystemConfig {
            n,
            f,
            seed: 0x53_7472_6174_7573, // "Stratus"
            pab_quorum: f + 1,
            network: NetworkPreset::Lan,
            mempool: MempoolConfig::default(),
            view_change_timeout: 1_000 * MICROS_PER_MS,
            shards: 1,
            executor: ExecutorKind::Sequential,
            dag_mode: DagMode::default(),
        }
    }

    /// Sets the number of shared-mempool dissemination shards, clamped to
    /// at least 1.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the shard-executor kind (sequential or parallel).
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Sets the network preset.
    pub fn with_network(mut self, network: NetworkPreset) -> Self {
        self.network = network;
        self
    }

    /// Sets the RNG / key-derivation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the PAB availability quorum, clamped to `[f+1, 2f+1]`.
    pub fn with_pab_quorum(mut self, q: usize) -> Self {
        self.pab_quorum = q.clamp(self.f + 1, 2 * self.f + 1);
        self
    }

    /// Sets the mempool batching parameters.
    pub fn with_mempool(mut self, mempool: MempoolConfig) -> Self {
        self.mempool = mempool;
        self
    }

    /// Sets the DAG mempool commit-derivation mode.
    pub fn with_dag_mode(mut self, dag_mode: DagMode) -> Self {
        self.dag_mode = dag_mode;
        self
    }

    /// The consensus quorum `2f + 1`.
    pub fn consensus_quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// The minimum availability quorum `f + 1`.
    pub fn min_pab_quorum(&self) -> usize {
        self.f + 1
    }

    /// Iterator over every replica id in the system.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> {
        (0..self.n as u32).map(ReplicaId)
    }

    /// Whether `N >= 3f + 1` holds for the configured values.
    pub fn is_valid(&self) -> bool {
        self.n > 3 * self.f
            && self.pab_quorum > self.f
            && self.pab_quorum <= 2 * self.f + 1
            && self.pab_quorum < self.n
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_computes_max_f() {
        assert_eq!(SystemConfig::new(4).f, 1);
        assert_eq!(SystemConfig::new(7).f, 2);
        assert_eq!(SystemConfig::new(100).f, 33);
        assert_eq!(SystemConfig::new(400).f, 133);
    }

    #[test]
    #[should_panic(expected = "at least 4 replicas")]
    fn too_few_replicas_panics() {
        let _ = SystemConfig::new(3);
    }

    #[test]
    fn quorums_follow_bft_arithmetic() {
        let c = SystemConfig::new(10);
        assert_eq!(c.f, 3);
        assert_eq!(c.consensus_quorum(), 7);
        assert_eq!(c.min_pab_quorum(), 4);
        assert!(c.is_valid());
    }

    #[test]
    fn pab_quorum_is_clamped() {
        let c = SystemConfig::new(10).with_pab_quorum(1);
        assert_eq!(c.pab_quorum, 4); // f + 1
        let c = SystemConfig::new(10).with_pab_quorum(100);
        assert_eq!(c.pab_quorum, 7); // 2f + 1
    }

    #[test]
    fn network_presets_match_paper() {
        assert_eq!(NetworkPreset::Lan.bandwidth_bps(), 3_000_000_000);
        assert_eq!(NetworkPreset::Wan.bandwidth_bps(), 100_000_000);
        assert_eq!(NetworkPreset::Wan.one_way_delay_us(), 50_000);
    }

    #[test]
    fn mempool_defaults_match_evaluation_setup() {
        let m = MempoolConfig::default();
        assert_eq!(m.batch_size_bytes, 128 * 1024);
        assert_eq!(m.tx_payload_bytes, 128);
        assert_eq!(m.batch_timeout, 200_000);
        assert_eq!(m.txs_per_batch(), 1024);
    }

    #[test]
    fn executor_kind_parses_and_defaults() {
        assert_eq!("sequential".parse(), Ok(ExecutorKind::Sequential));
        assert_eq!("PAR".parse(), Ok(ExecutorKind::Parallel));
        assert_eq!(" parallel ".parse(), Ok(ExecutorKind::Parallel));
        assert_eq!("bogus".parse::<ExecutorKind>(), Err(()));
        assert_eq!(ExecutorKind::default(), ExecutorKind::Sequential);
        assert_eq!(ExecutorKind::Parallel.label(), "parallel");
        let c = SystemConfig::new(4).with_executor(ExecutorKind::Parallel);
        assert_eq!(c.executor, ExecutorKind::Parallel);
    }

    #[test]
    fn dag_mode_parses_and_defaults() {
        assert_eq!("certified".parse(), Ok(DagMode::Certified));
        assert_eq!("FAST".parse(), Ok(DagMode::FastPath));
        assert_eq!(" fast-path ".parse(), Ok(DagMode::FastPath));
        assert_eq!("bogus".parse::<DagMode>(), Err(()));
        assert_eq!(DagMode::default(), DagMode::Certified);
        assert_eq!(DagMode::FastPath.label(), "fast-path");
        let c = SystemConfig::new(4).with_dag_mode(DagMode::FastPath);
        assert_eq!(c.dag_mode, DagMode::FastPath);
    }

    #[test]
    fn replicas_iterator_covers_all() {
        let c = SystemConfig::new(7);
        let ids: Vec<_> = c.replicas().collect();
        assert_eq!(ids.len(), 7);
        assert_eq!(ids[0], ReplicaId(0));
        assert_eq!(ids[6], ReplicaId(6));
    }
}
