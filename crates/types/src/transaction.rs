//! Client transactions.

use crate::ids::{ClientId, ReplicaId, TxId};
use crate::time::SimTime;
use crate::wire::{WireSize, TX_OVERHEAD_BYTES};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A client transaction.
///
/// The evaluation in the paper uses opaque key-value `set` operations with
/// a fixed payload size (128 bytes by default); execution semantics are out
/// of scope for the consensus measurements, so the payload here is an
/// opaque byte string whose *length* is what matters to the simulation.
/// Example applications (e.g. the permissioned key-value chain) encode real
/// commands into the payload.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Unique transaction id (derived from client id and sequence number).
    pub id: TxId,
    /// Issuing client.
    pub client: ClientId,
    /// Per-client sequence number.
    pub seq: u64,
    /// Opaque command payload.
    #[serde(skip)]
    pub payload: Bytes,
    /// Payload length in bytes (kept separately so synthetic workloads can
    /// model large payloads without allocating them).
    pub payload_len: usize,
    /// Simulated time at which the client created the transaction.
    pub created_at: SimTime,
    /// Simulated time at which a replica first received the transaction;
    /// commit latency is measured from this point (Section VII-A).
    pub received_at: Option<SimTime>,
    /// Replica that first received the transaction from the client.
    pub entry_replica: Option<ReplicaId>,
}

impl Transaction {
    /// Creates a transaction with a real payload.
    pub fn with_payload(client: ClientId, seq: u64, payload: Bytes, created_at: SimTime) -> Self {
        let payload_len = payload.len();
        Transaction {
            id: TxId::derive(client, seq),
            client,
            seq,
            payload,
            payload_len,
            created_at,
            received_at: None,
            entry_replica: None,
        }
    }

    /// Creates a synthetic transaction of `payload_len` bytes without
    /// allocating the payload (used by the workload generators).
    pub fn synthetic(client: ClientId, seq: u64, payload_len: usize, created_at: SimTime) -> Self {
        Transaction {
            id: TxId::derive(client, seq),
            client,
            seq,
            payload: Bytes::new(),
            payload_len,
            created_at,
            received_at: None,
            entry_replica: None,
        }
    }

    /// Marks the transaction as received by `replica` at `now`, if it has
    /// not already been stamped.
    pub fn mark_received(&mut self, replica: ReplicaId, now: SimTime) {
        if self.received_at.is_none() {
            self.received_at = Some(now);
            self.entry_replica = Some(replica);
        }
    }

    /// Commit latency relative to first reception, if the reception time is
    /// known.
    pub fn latency_at_commit(&self, commit_time: SimTime) -> Option<SimTime> {
        self.received_at.map(|r| commit_time.saturating_sub(r))
    }
}

impl WireSize for Transaction {
    fn wire_size(&self) -> usize {
        TX_OVERHEAD_BYTES + self.payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_transactions_have_ids_and_sizes() {
        let tx = Transaction::synthetic(ClientId(3), 7, 128, 1000);
        assert_eq!(tx.id, TxId::derive(ClientId(3), 7));
        assert_eq!(tx.wire_size(), TX_OVERHEAD_BYTES + 128);
        assert!(tx.received_at.is_none());
    }

    #[test]
    fn payload_transactions_record_length() {
        let tx = Transaction::with_payload(ClientId(1), 0, Bytes::from_static(b"set k v"), 0);
        assert_eq!(tx.payload_len, 7);
        assert_eq!(tx.wire_size(), TX_OVERHEAD_BYTES + 7);
    }

    #[test]
    fn mark_received_only_stamps_once() {
        let mut tx = Transaction::synthetic(ClientId(1), 0, 128, 0);
        tx.mark_received(ReplicaId(2), 50);
        tx.mark_received(ReplicaId(3), 90);
        assert_eq!(tx.received_at, Some(50));
        assert_eq!(tx.entry_replica, Some(ReplicaId(2)));
    }

    #[test]
    fn latency_is_relative_to_reception() {
        let mut tx = Transaction::synthetic(ClientId(1), 0, 128, 0);
        assert_eq!(tx.latency_at_commit(100), None);
        tx.mark_received(ReplicaId(0), 40);
        assert_eq!(tx.latency_at_commit(100), Some(60));
        // Saturates rather than underflowing.
        assert_eq!(tx.latency_at_commit(10), Some(0));
    }
}
