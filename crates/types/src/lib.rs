//! Core data types shared by every crate in the Stratus reproduction.
//!
//! This crate defines the vocabulary of the system described in
//! *"Scaling Blockchain Consensus via a Robust Shared Mempool"*:
//! transactions, microblocks (batches of transactions disseminated by the
//! shared mempool), proposals (which reference microblocks by id), blocks,
//! replica/client identifiers, logical time, wire-size modelling, and the
//! system configuration (`N`, `f`, quorum sizes, batch sizes, timeouts and
//! network presets).

pub mod block;
pub mod config;
pub mod ids;
pub mod microblock;
pub mod proposal;
pub mod time;
pub mod transaction;
pub mod wire;

pub use block::Block;
pub use config::{DagMode, ExecutorKind, MempoolConfig, NetworkPreset, SystemConfig};
pub use ids::{mb_id_derivations, BlockId, ClientId, MicroblockId, ReplicaId, TxId, View};
pub use microblock::Microblock;
pub use proposal::{MicroblockRef, Payload, Proposal, SHARD_GROUP_TAG_BYTES};
pub use time::{SimTime, MICROS_PER_MS, MICROS_PER_SEC};
pub use transaction::Transaction;
pub use wire::{WireSize, PROPOSAL_HEADER_BYTES, TX_OVERHEAD_BYTES, VOTE_BYTES};
