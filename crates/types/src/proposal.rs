//! Proposals and their payloads.
//!
//! The key distinction in the paper is between *native* proposals (which
//! carry full transaction data and make the leader the dissemination
//! bottleneck) and *shared-mempool* proposals (which carry only microblock
//! ids — plus, for Stratus, the availability proof for each id).

use crate::ids::{BlockId, MicroblockId, ReplicaId, View};
use crate::transaction::Transaction;
use crate::wire::{WireSize, PROPOSAL_HEADER_BYTES, QC_BYTES};
use serde::{Deserialize, Serialize};
use smp_crypto::{Digest, Hasher, QuorumProof};
use std::sync::Arc;

/// Reference to a microblock inside a shared-mempool proposal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MicroblockRef {
    /// Identifier of the referenced microblock.
    pub id: MicroblockId,
    /// Replica that created (batched) the microblock; used as a fetch
    /// target for mempools without availability proofs.
    pub creator: ReplicaId,
    /// Number of transactions the microblock contains (metadata carried in
    /// the proposal so replicas can account for ordered transactions even
    /// before the data arrives).
    pub tx_count: u32,
    /// Availability proof for the microblock (present for Stratus; absent
    /// for the simple shared mempool).
    pub proof: Option<QuorumProof>,
}

impl MicroblockRef {
    /// A reference without an availability proof.
    pub fn unproven(id: MicroblockId, creator: ReplicaId, tx_count: u32) -> Self {
        MicroblockRef {
            id,
            creator,
            tx_count,
            proof: None,
        }
    }

    /// A reference with its availability proof.
    pub fn proven(id: MicroblockId, creator: ReplicaId, tx_count: u32, proof: QuorumProof) -> Self {
        MicroblockRef {
            id,
            creator,
            tx_count,
            proof: Some(proof),
        }
    }
}

impl WireSize for MicroblockRef {
    fn wire_size(&self) -> usize {
        // id + creator (4 B) + tx count (4 B) + optional proof.
        self.id.0.wire_size() + 8 + self.proof.as_ref().map_or(0, QuorumProof::wire_size)
    }
}

/// The payload carried by a proposal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Full transaction data (native mempool; the leader disseminates it).
    /// Shared so that broadcasting the proposal does not copy the data.
    Inline(Arc<Vec<Transaction>>),
    /// Microblock references (shared mempool; data already disseminated).
    Refs(Vec<MicroblockRef>),
    /// Per-shard sub-payloads assembled by a sharded mempool
    /// (`smp-shard`): each group carries the dissemination-shard index the
    /// content belongs to, so the receiving replica can hand it to the
    /// matching inner mempool instance.  Groups never nest.
    Sharded(Vec<(u16, Payload)>),
    /// An empty proposal (used to keep chained protocols advancing when no
    /// transactions are pending).
    Empty,
}

/// Bytes each per-shard group contributes on the wire beyond its content
/// (the shard index tag).
pub const SHARD_GROUP_TAG_BYTES: usize = 2;

impl Payload {
    /// Builds an inline payload from owned transactions.
    pub fn inline(txs: Vec<Transaction>) -> Self {
        Payload::Inline(Arc::new(txs))
    }

    /// Builds a sharded payload, dropping empty groups and collapsing the
    /// degenerate cases (no content at all becomes [`Payload::Empty`]).
    pub fn sharded(groups: Vec<(u16, Payload)>) -> Self {
        let groups: Vec<(u16, Payload)> =
            groups.into_iter().filter(|(_, p)| !p.is_empty()).collect();
        if groups.is_empty() {
            Payload::Empty
        } else {
            Payload::Sharded(groups)
        }
    }

    /// Number of transactions directly countable from the payload.  For
    /// `Refs` payloads the count is unknown at this layer and reported as
    /// zero; the mempool resolves it when filling the proposal.
    pub fn inline_tx_count(&self) -> usize {
        match self {
            Payload::Inline(txs) => txs.len(),
            Payload::Sharded(groups) => groups.iter().map(|(_, p)| p.inline_tx_count()).sum(),
            _ => 0,
        }
    }

    /// Number of microblock references in the payload.
    pub fn ref_count(&self) -> usize {
        match self {
            Payload::Refs(refs) => refs.len(),
            Payload::Sharded(groups) => groups.iter().map(|(_, p)| p.ref_count()).sum(),
            _ => 0,
        }
    }

    /// Whether the payload carries nothing at all.
    pub fn is_empty(&self) -> bool {
        match self {
            Payload::Inline(txs) => txs.is_empty(),
            Payload::Refs(refs) => refs.is_empty(),
            Payload::Sharded(groups) => groups.iter().all(|(_, p)| p.is_empty()),
            Payload::Empty => true,
        }
    }

    /// A digest committing to the payload (used in the block id).
    pub fn root(&self) -> Digest {
        let mut h = Hasher::with_domain(0x5041_594c); // "PAYL"
        match self {
            Payload::Inline(txs) => {
                h.update_u64(0);
                for tx in txs.iter() {
                    h.update_digest(&tx.id.0);
                }
            }
            Payload::Refs(refs) => {
                h.update_u64(1);
                for r in refs {
                    h.update_digest(&r.id.0);
                }
            }
            Payload::Empty => h.update_u64(2),
            Payload::Sharded(groups) => {
                h.update_u64(3);
                for (shard, p) in groups {
                    h.update_u64(*shard as u64);
                    h.update_digest(&p.root());
                }
            }
        }
        h.finalize()
    }
}

impl WireSize for Payload {
    fn wire_size(&self) -> usize {
        match self {
            Payload::Inline(txs) => txs.iter().map(WireSize::wire_size).sum(),
            Payload::Refs(refs) => refs.iter().map(WireSize::wire_size).sum(),
            Payload::Sharded(groups) => groups
                .iter()
                .map(|(_, p)| SHARD_GROUP_TAG_BYTES + p.wire_size())
                .sum(),
            Payload::Empty => 0,
        }
    }
}

/// A proposal produced by the leader via `MakeProposal()`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Proposal {
    /// View in which the proposal was made.
    pub view: View,
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Identifier of this proposal (hash of header + payload root).
    pub id: BlockId,
    /// Parent block id.
    pub parent: BlockId,
    /// Proposing replica (the leader of `view`).
    pub proposer: ReplicaId,
    /// Payload: inline transactions or microblock references.
    pub payload: Payload,
    /// Whether the header embeds a quorum certificate for the parent
    /// (chained HotStuff does; it contributes [`QC_BYTES`] to the size).
    pub carries_qc: bool,
}

impl Proposal {
    /// Builds a proposal and derives its id.
    pub fn new(
        view: View,
        height: u64,
        parent: BlockId,
        proposer: ReplicaId,
        payload: Payload,
        carries_qc: bool,
    ) -> Self {
        let mut h = Hasher::with_domain(0x5052_4f50); // "PROP"
        h.update_u64(view.0);
        h.update_u64(height);
        h.update_digest(&parent.0);
        h.update_u64(proposer.0 as u64);
        h.update_digest(&payload.root());
        let id = BlockId(h.finalize());
        Proposal {
            view,
            height,
            id,
            parent,
            proposer,
            payload,
            carries_qc,
        }
    }
}

impl WireSize for Proposal {
    fn wire_size(&self) -> usize {
        PROPOSAL_HEADER_BYTES
            + if self.carries_qc { QC_BYTES } else { 0 }
            + self.payload.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn txs(n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::synthetic(ClientId(0), i as u64, 128, 0))
            .collect()
    }

    #[test]
    fn inline_payload_is_much_larger_than_refs() {
        let inline = Payload::inline(txs(1000));
        let refs = Payload::Refs(
            (0..10)
                .map(|i| {
                    MicroblockRef::unproven(MicroblockId(Digest::of_u64(i)), ReplicaId(0), 100)
                })
                .collect(),
        );
        assert!(inline.wire_size() > 50 * refs.wire_size());
    }

    #[test]
    fn payload_roots_distinguish_variants_and_contents() {
        let a = Payload::inline(txs(3));
        let b = Payload::inline(txs(4));
        let c = Payload::Empty;
        assert_ne!(a.root(), b.root());
        assert_ne!(a.root(), c.root());
    }

    #[test]
    fn proposal_id_changes_with_view_and_payload() {
        let p1 = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Empty,
            true,
        );
        let p2 = Proposal::new(
            View(2),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Empty,
            true,
        );
        let p3 = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::inline(txs(1)),
            true,
        );
        assert_ne!(p1.id, p2.id);
        assert_ne!(p1.id, p3.id);
    }

    #[test]
    fn carries_qc_adds_header_bytes() {
        let with = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Empty,
            true,
        );
        let without = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Empty,
            false,
        );
        assert_eq!(with.wire_size(), without.wire_size() + QC_BYTES);
    }

    #[test]
    fn counts_reflect_payload_kind() {
        let inline = Payload::inline(txs(5));
        assert_eq!(inline.inline_tx_count(), 5);
        assert_eq!(inline.ref_count(), 0);
        let refs = Payload::Refs(vec![MicroblockRef::unproven(
            MicroblockId(Digest::of_u64(1)),
            ReplicaId(0),
            10,
        )]);
        assert_eq!(refs.inline_tx_count(), 0);
        assert_eq!(refs.ref_count(), 1);
        assert!(Payload::Empty.is_empty());
        assert!(!inline.is_empty());
    }
}
