//! Committed blocks.
//!
//! A block is the result of `FillProposal(p)`: the proposal plus the full
//! content of every microblock it references (Section III-D).  Blocks are
//! what the executor consumes after commit.

use crate::ids::BlockId;
use crate::microblock::Microblock;
use crate::proposal::{Payload, Proposal};
use crate::time::SimTime;
use crate::transaction::Transaction;
use serde::{Deserialize, Serialize};

/// A full block: an ordered proposal together with the transaction data it
/// references.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The proposal that was ordered.
    pub proposal: Proposal,
    /// Microblocks referenced by the proposal, in payload order (empty for
    /// native proposals, whose transactions are inline).
    pub microblocks: Vec<Microblock>,
    /// Simulated time at which the block became full on this replica.
    pub filled_at: SimTime,
}

impl Block {
    /// Assembles a block from a proposal and the resolved microblocks.
    pub fn assemble(proposal: Proposal, microblocks: Vec<Microblock>, filled_at: SimTime) -> Self {
        Block {
            proposal,
            microblocks,
            filled_at,
        }
    }

    /// The block id (same as the proposal id).
    pub fn id(&self) -> BlockId {
        self.proposal.id
    }

    /// Iterates over every transaction ordered by this block, whether it
    /// was inline (directly or inside per-shard groups) or referenced
    /// through microblocks.
    pub fn transactions(&self) -> impl Iterator<Item = &Transaction> {
        let inline: Vec<&Transaction> = match &self.proposal.payload {
            Payload::Inline(txs) => txs.iter().collect(),
            // Groups never nest (see `Payload::Sharded`), so one level of
            // flattening collects every sharded inline transaction.
            Payload::Sharded(groups) => groups
                .iter()
                .filter_map(|(_, p)| match p {
                    Payload::Inline(txs) => Some(txs.iter()),
                    _ => None,
                })
                .flatten()
                .collect(),
            _ => Vec::new(),
        };
        inline
            .into_iter()
            .chain(self.microblocks.iter().flat_map(|mb| mb.txs.iter()))
    }

    /// Number of transactions ordered by this block.
    pub fn tx_count(&self) -> usize {
        self.transactions().count()
    }

    /// Whether the block orders no transactions.
    pub fn is_empty(&self) -> bool {
        self.tx_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, ReplicaId, View};
    use crate::proposal::MicroblockRef;

    fn txs(base: u64, n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::synthetic(ClientId(0), base + i as u64, 128, 0))
            .collect()
    }

    #[test]
    fn inline_block_counts_inline_txs() {
        let p = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::inline(txs(0, 4)),
            true,
        );
        let b = Block::assemble(p, vec![], 10);
        assert_eq!(b.tx_count(), 4);
        assert!(!b.is_empty());
    }

    #[test]
    fn ref_block_counts_microblock_txs() {
        let mb1 = Microblock::seal(ReplicaId(1), txs(0, 3), 0);
        let mb2 = Microblock::seal(ReplicaId(2), txs(100, 2), 0);
        let p = Proposal::new(
            View(2),
            2,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Refs(vec![
                MicroblockRef::unproven(mb1.id, mb1.creator, mb1.len() as u32),
                MicroblockRef::unproven(mb2.id, mb2.creator, mb2.len() as u32),
            ]),
            true,
        );
        let b = Block::assemble(p, vec![mb1, mb2], 20);
        assert_eq!(b.tx_count(), 5);
        assert_eq!(b.id(), b.proposal.id);
    }

    #[test]
    fn sharded_block_counts_inline_txs_from_every_group() {
        let mb = Microblock::seal(ReplicaId(1), txs(200, 2), 0);
        let p = Proposal::new(
            View(3),
            3,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Sharded(vec![
                (0, Payload::inline(txs(0, 3))),
                (
                    1,
                    Payload::Refs(vec![MicroblockRef::unproven(
                        mb.id,
                        mb.creator,
                        mb.len() as u32,
                    )]),
                ),
                (2, Payload::inline(txs(100, 1))),
            ]),
            true,
        );
        let b = Block::assemble(p, vec![mb], 30);
        // 3 + 1 sharded inline plus 2 from the referenced microblock.
        assert_eq!(b.tx_count(), 6);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_block_is_empty() {
        let p = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Empty,
            false,
        );
        let b = Block::assemble(p, vec![], 0);
        assert!(b.is_empty());
    }
}
