//! Zipfian load shares.
//!
//! The paper simulates skewed client placement with the Zipf parameters
//! `Zipf1 (s = 1.01, v = 1)` — highly skewed — and
//! `Zipf10 (s = 1.01, v = 10)` — lightly skewed — following the generator
//! from Go's `math/rand` package, where the probability of rank `k`
//! (0-based) is proportional to `1 / (v + k)^s`.

use serde::{Deserialize, Serialize};

/// Normalized Zipfian weights over `n` ranks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ZipfWeights {
    /// Skew exponent `s > 1`.
    pub s: f64,
    /// Offset `v >= 1`.
    pub v: f64,
    shares: Vec<f64>,
}

impl ZipfWeights {
    /// Computes normalized shares for `n` ranks with parameters `s`, `v`.
    pub fn new(n: usize, s: f64, v: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s > 1.0, "Zipf exponent must exceed 1");
        assert!(v >= 1.0, "Zipf offset must be at least 1");
        let raw: Vec<f64> = (0..n).map(|k| 1.0 / (v + k as f64).powf(s)).collect();
        let sum: f64 = raw.iter().sum();
        ZipfWeights {
            s,
            v,
            shares: raw.into_iter().map(|w| w / sum).collect(),
        }
    }

    /// The paper's highly skewed distribution, `Zipf1`.
    pub fn zipf1(n: usize) -> Self {
        ZipfWeights::new(n, 1.01, 1.0)
    }

    /// The paper's lightly skewed distribution, `Zipf10`.
    pub fn zipf10(n: usize) -> Self {
        ZipfWeights::new(n, 1.01, 10.0)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// Whether there are no ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// The normalized share of rank `k`.
    pub fn share(&self, k: usize) -> f64 {
        self.shares[k]
    }

    /// All shares, ordered by rank (descending share).
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// Fraction of total load received by the top `top` ranks.
    pub fn top_share(&self, top: usize) -> f64 {
        self.shares.iter().take(top).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_normalized_and_decreasing() {
        let z = ZipfWeights::zipf1(100);
        let sum: f64 = z.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for w in z.shares().windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn zipf1_matches_figure_10_extremes() {
        // Figure 10a: with 100 replicas the most loaded replica receives
        // ~19.6% of the load under Zipf1 and ~4.1% under Zipf10.
        let z1 = ZipfWeights::zipf1(100);
        let z10 = ZipfWeights::zipf10(100);
        assert!(
            (z1.share(0) - 0.196).abs() < 0.01,
            "zipf1 head share {}",
            z1.share(0)
        );
        assert!(
            (z10.share(0) - 0.041).abs() < 0.01,
            "zipf10 head share {}",
            z10.share(0)
        );
    }

    #[test]
    fn zipf1_top_10_percent_carry_most_load() {
        // Section VII-D: with s = 1.01 and 100 replicas, 10% of the
        // replicas receive the (large) majority of the load.
        let z1 = ZipfWeights::zipf1(100);
        assert!(z1.top_share(10) > 0.55, "top-10 share {}", z1.top_share(10));
        let z10 = ZipfWeights::zipf10(100);
        assert!(z10.top_share(10) < z1.top_share(10));
    }

    #[test]
    fn larger_networks_match_figure_10_heads() {
        for (n, expected_z1, expected_z10) in [
            (200, 0.173, 0.033),
            (300, 0.162, 0.029),
            (400, 0.156, 0.027),
        ] {
            let z1 = ZipfWeights::zipf1(n);
            let z10 = ZipfWeights::zipf10(n);
            assert!(
                (z1.share(0) - expected_z1).abs() < 0.01,
                "n={n} z1 {}",
                z1.share(0)
            );
            assert!(
                (z10.share(0) - expected_z10).abs() < 0.01,
                "n={n} z10 {}",
                z10.share(0)
            );
        }
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn invalid_exponent_panics() {
        let _ = ZipfWeights::new(10, 0.5, 1.0);
    }
}
