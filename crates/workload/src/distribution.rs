//! How offered load is spread over replicas.

use crate::zipf::ZipfWeights;
use serde::{Deserialize, Serialize};

/// Assignment of client load to replicas.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LoadDistribution {
    /// Every replica receives the same share (the default in
    /// Sections VII-B/C).
    Even,
    /// Zipf-skewed shares (Section VII-D); rank 0 is the most loaded
    /// replica.
    Zipf {
        /// Skew exponent (`1.01` in the paper).
        s: f64,
        /// Offset (`1` for Zipf1, `10` for Zipf10).
        v: f64,
    },
    /// Explicit per-replica shares (will be normalized).
    Custom(Vec<f64>),
    /// All load hits a single replica (worst case / targeted attack).
    SingleReplica(usize),
}

impl LoadDistribution {
    /// The paper's highly skewed workload.
    pub fn zipf1() -> Self {
        LoadDistribution::Zipf { s: 1.01, v: 1.0 }
    }

    /// The paper's lightly skewed workload.
    pub fn zipf10() -> Self {
        LoadDistribution::Zipf { s: 1.01, v: 10.0 }
    }

    /// Normalized per-replica shares for a system of `n` replicas.
    pub fn shares(&self, n: usize) -> Vec<f64> {
        assert!(n > 0);
        match self {
            LoadDistribution::Even => vec![1.0 / n as f64; n],
            LoadDistribution::Zipf { s, v } => ZipfWeights::new(n, *s, *v).shares().to_vec(),
            LoadDistribution::Custom(raw) => {
                assert_eq!(raw.len(), n, "custom distribution must cover every replica");
                let sum: f64 = raw.iter().sum();
                assert!(sum > 0.0, "custom distribution must have positive mass");
                raw.iter().map(|w| w / sum).collect()
            }
            LoadDistribution::SingleReplica(target) => {
                assert!(*target < n, "target replica out of range");
                let mut v = vec![0.0; n];
                v[*target] = 1.0;
                v
            }
        }
    }

    /// Coefficient of variation of the shares — a scalar skewness measure
    /// used in tests and reports.
    pub fn skewness(&self, n: usize) -> f64 {
        let shares = self.shares(n);
        let mean = 1.0 / n as f64;
        let var = shares.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_distribution_is_uniform() {
        let shares = LoadDistribution::Even.shares(10);
        assert!(shares.iter().all(|s| (*s - 0.1).abs() < 1e-12));
        assert!(LoadDistribution::Even.skewness(10) < 1e-9);
    }

    #[test]
    fn zipf_is_more_skewed_than_even_and_zipf10() {
        let z1 = LoadDistribution::zipf1().skewness(100);
        let z10 = LoadDistribution::zipf10().skewness(100);
        assert!(z1 > z10);
        assert!(z10 > LoadDistribution::Even.skewness(100));
    }

    #[test]
    fn custom_shares_are_normalized() {
        let d = LoadDistribution::Custom(vec![2.0, 1.0, 1.0, 0.0]);
        let shares = d.shares(4);
        assert!((shares[0] - 0.5).abs() < 1e-12);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_replica_concentrates_everything() {
        let shares = LoadDistribution::SingleReplica(2).shares(4);
        assert_eq!(shares, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "cover every replica")]
    fn custom_with_wrong_len_panics() {
        let _ = LoadDistribution::Custom(vec![1.0, 2.0]).shares(3);
    }
}
