//! Client workload generation for the Stratus reproduction.
//!
//! The paper's clients are open-loop load generators issuing fixed-size
//! key-value transactions to replicas.  Two aspects matter to the
//! evaluation:
//!
//! * the **aggregate arrival rate** offered to the system (swept until
//!   saturation in Figures 6 and 7), and
//! * **how that load is spread over replicas** — evenly in most
//!   experiments, or Zipf-skewed (Figure 10) to stress the distributed
//!   load balancer (Figure 11).
//!
//! This crate provides the per-replica rate model ([`WorkloadSpec`] /
//! [`LoadDistribution`]), the Zipfian share computation, a deterministic
//! transaction factory, and the synthetic WAN delay-trace generator used
//! to reproduce Figure 5.

pub mod distribution;
pub mod generator;
pub mod trace;
pub mod zipf;

pub use distribution::LoadDistribution;
pub use generator::{TxFactory, WorkloadSpec};
pub use trace::{DelayTrace, TraceConfig};
pub use zipf::ZipfWeights;
