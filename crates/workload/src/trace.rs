//! Synthetic WAN delay traces (Figure 5).
//!
//! Figure 5 motivates the stable-time workload estimator by showing that
//! inter-datacenter round-trip delays (Virginia ↔ Singapore on Alibaba
//! Cloud) are stable and predictable: ~234 ms with sub-millisecond jitter
//! for most of the day, with occasional short-lived spikes.  We cannot
//! measure that link, so this module generates a trace with the same
//! statistical shape, which is all the estimator (and the figure) needs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic delay trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Baseline round-trip time in milliseconds (Virginia–Singapore ≈ 234).
    pub base_rtt_ms: f64,
    /// Standard deviation of the per-sample jitter in milliseconds.
    pub jitter_ms: f64,
    /// Probability that a given minute contains a congestion spike.
    pub spike_probability: f64,
    /// Additional delay during a spike, milliseconds.
    pub spike_extra_ms: f64,
    /// Number of delay samples measured per minute.
    pub samples_per_minute: usize,
    /// Trace duration in minutes (24 h = 1440).
    pub minutes: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            base_rtt_ms: 233.8,
            jitter_ms: 0.15,
            spike_probability: 0.004,
            spike_extra_ms: 8.0,
            samples_per_minute: 4_000,
            minutes: 1_440,
        }
    }
}

/// A generated delay trace: per-minute samples of round-trip delay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DelayTrace {
    /// Configuration used to generate the trace.
    pub config: TraceConfig,
    /// `samples[m]` holds the RTT samples (ms) measured during minute `m`.
    pub samples: Vec<Vec<f64>>,
}

impl DelayTrace {
    /// Generates a trace deterministically from `seed`.
    pub fn generate(config: TraceConfig, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(config.minutes);
        for _ in 0..config.minutes {
            let spike = rng.gen_bool(config.spike_probability.clamp(0.0, 1.0));
            let extra = if spike { config.spike_extra_ms } else { 0.0 };
            let minute: Vec<f64> = (0..config.samples_per_minute)
                .map(|_| {
                    // Approximately normal jitter via the sum of uniforms.
                    let u: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 4.0 - 0.5;
                    (config.base_rtt_ms + extra + u * 4.0 * config.jitter_ms).max(0.0)
                })
                .collect();
            samples.push(minute);
        }
        DelayTrace { config, samples }
    }

    /// Histogram of all samples bucketed into 1 ms bins, as
    /// `(bucket_floor_ms, count)` pairs — the data behind the Figure 5a
    /// heat map (aggregated over time).
    pub fn histogram_1ms(&self) -> Vec<(u64, u64)> {
        use std::collections::BTreeMap;
        let mut bins: BTreeMap<u64, u64> = BTreeMap::new();
        for minute in &self.samples {
            for s in minute {
                *bins.entry(*s as u64).or_default() += 1;
            }
        }
        bins.into_iter().collect()
    }

    /// Per-minute heat-map row: how many samples of minute `m` fall into
    /// each 1 ms bin between `lo_ms` and `hi_ms`.
    pub fn heatmap_row(&self, minute: usize, lo_ms: u64, hi_ms: u64) -> Vec<u64> {
        let mut row = vec![0u64; (hi_ms - lo_ms + 1) as usize];
        for s in &self.samples[minute] {
            let bucket = (*s as u64).clamp(lo_ms, hi_ms) - lo_ms;
            row[bucket as usize] += 1;
        }
        row
    }

    /// The `p`-th percentile of delays observed in one minute.
    pub fn minute_percentile(&self, minute: usize, p: f64) -> f64 {
        let mut v = self.samples[minute].clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((p / 100.0) * v.len() as f64).ceil() as usize;
        v[idx.saturating_sub(1).min(v.len() - 1)]
    }

    /// Mean delay over the whole trace.
    pub fn mean_ms(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for minute in &self.samples {
            sum += minute.iter().sum::<f64>();
            n += minute.len();
        }
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TraceConfig {
        TraceConfig {
            samples_per_minute: 200,
            minutes: 60,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn trace_is_deterministic_for_a_seed() {
        let a = DelayTrace::generate(small_config(), 9);
        let b = DelayTrace::generate(small_config(), 9);
        assert_eq!(a.samples, b.samples);
        let c = DelayTrace::generate(small_config(), 10);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn delays_are_stable_around_the_base_rtt() {
        let t = DelayTrace::generate(small_config(), 1);
        let mean = t.mean_ms();
        assert!((mean - 233.8).abs() < 1.0, "mean {mean}");
        // The vast majority of samples sit within 2 ms of the base.
        let hist = t.histogram_1ms();
        let total: u64 = hist.iter().map(|(_, c)| *c).sum();
        let near: u64 = hist
            .iter()
            .filter(|(b, _)| (*b as f64 - 233.8).abs() <= 2.0)
            .map(|(_, c)| *c)
            .sum();
        assert!(near as f64 / total as f64 > 0.95);
    }

    #[test]
    fn heatmap_row_covers_requested_bins() {
        let t = DelayTrace::generate(small_config(), 2);
        let row = t.heatmap_row(0, 232, 244);
        assert_eq!(row.len(), 13);
        assert_eq!(
            row.iter().sum::<u64>() as usize,
            t.config.samples_per_minute
        );
    }

    #[test]
    fn minute_percentile_is_ordered() {
        let t = DelayTrace::generate(small_config(), 3);
        let p50 = t.minute_percentile(5, 50.0);
        let p99 = t.minute_percentile(5, 99.0);
        assert!(p99 >= p50);
    }
}
