//! Open-loop workload specification and transaction factory.
//!
//! Replicas generate their own client arrivals inside the simulation (the
//! paper excludes the client-to-replica hop from all measurements, and
//! commit latency is measured from first reception at a replica), so the
//! workload layer only has to answer two questions:
//!
//! * *what rate of transactions should replica `i` receive?* —
//!   [`WorkloadSpec::rate_for`], and
//! * *what does the next transaction for replica `i` look like?* —
//!   [`TxFactory::next_tx`].

use crate::distribution::LoadDistribution;
use serde::{Deserialize, Serialize};
use smp_types::{ClientId, ReplicaId, SimTime, Transaction};

/// Description of the offered load for one experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Aggregate offered load across the whole system, transactions per
    /// second.
    pub total_rate_tps: f64,
    /// Transaction payload size in bytes (128 B in the paper).
    pub payload_bytes: usize,
    /// How the load is spread over replicas.
    pub distribution: LoadDistribution,
}

impl WorkloadSpec {
    /// An evenly spread workload at `total_rate_tps`.
    pub fn even(total_rate_tps: f64, payload_bytes: usize) -> Self {
        WorkloadSpec {
            total_rate_tps,
            payload_bytes,
            distribution: LoadDistribution::Even,
        }
    }

    /// A skewed workload.
    pub fn skewed(
        total_rate_tps: f64,
        payload_bytes: usize,
        distribution: LoadDistribution,
    ) -> Self {
        WorkloadSpec {
            total_rate_tps,
            payload_bytes,
            distribution,
        }
    }

    /// Offered rate (tx/s) for replica `replica` in a system of `n`.
    pub fn rate_for(&self, replica: ReplicaId, n: usize) -> f64 {
        let shares = self.distribution.shares(n);
        self.total_rate_tps * shares[replica.index()]
    }

    /// Per-replica rates for the whole system.
    pub fn rates(&self, n: usize) -> Vec<f64> {
        self.distribution
            .shares(n)
            .into_iter()
            .map(|s| s * self.total_rate_tps)
            .collect()
    }

    /// Scales the total offered rate by `factor` (used by the saturation
    /// search in the experiment harness).
    pub fn scaled(&self, factor: f64) -> Self {
        WorkloadSpec {
            total_rate_tps: self.total_rate_tps * factor,
            payload_bytes: self.payload_bytes,
            distribution: self.distribution.clone(),
        }
    }
}

/// Deterministic per-replica transaction factory.
///
/// Each replica owns a disjoint [`ClientId`] space (derived from the
/// replica index), so transaction ids never collide across replicas —
/// mirroring the paper's assumption that each client submits every
/// transaction to exactly one replica.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TxFactory {
    client: ClientId,
    next_seq: u64,
    payload_bytes: usize,
    /// Fractional transaction accumulator for rate-based generation.
    carry: f64,
}

impl TxFactory {
    /// Creates the factory for `replica`.
    pub fn new(replica: ReplicaId, payload_bytes: usize) -> Self {
        TxFactory {
            client: ClientId(replica.0),
            next_seq: 0,
            payload_bytes,
            carry: 0.0,
        }
    }

    /// Produces the next transaction, created at time `now`.
    pub fn next_tx(&mut self, now: SimTime) -> Transaction {
        let tx = Transaction::synthetic(self.client, self.next_seq, self.payload_bytes, now);
        self.next_seq += 1;
        tx
    }

    /// Produces the batch of transactions that arrive during a tick of
    /// length `tick_us` at offered rate `rate_tps`, carrying fractional
    /// remainders across ticks so long-run rates are exact.
    pub fn tick(&mut self, now: SimTime, tick_us: SimTime, rate_tps: f64) -> Vec<Transaction> {
        let expected = rate_tps * tick_us as f64 / 1_000_000.0 + self.carry;
        let count = expected.floor() as usize;
        self.carry = expected - count as f64;
        (0..count).map(|_| self.next_tx(now)).collect()
    }

    /// Total transactions produced so far.
    pub fn produced(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_split_follows_distribution() {
        let spec = WorkloadSpec::even(10_000.0, 128);
        assert!((spec.rate_for(ReplicaId(3), 10) - 1_000.0).abs() < 1e-9);
        let skew = WorkloadSpec::skewed(10_000.0, 128, LoadDistribution::zipf1());
        assert!(skew.rate_for(ReplicaId(0), 10) > skew.rate_for(ReplicaId(9), 10));
        let total: f64 = skew.rates(10).iter().sum();
        assert!((total - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn scaled_changes_only_rate() {
        let spec = WorkloadSpec::even(10_000.0, 128).scaled(2.5);
        assert!((spec.total_rate_tps - 25_000.0).abs() < 1e-9);
        assert_eq!(spec.payload_bytes, 128);
    }

    #[test]
    fn factory_produces_unique_ids_per_replica() {
        let mut a = TxFactory::new(ReplicaId(0), 128);
        let mut b = TxFactory::new(ReplicaId(1), 128);
        let ta1 = a.next_tx(0);
        let ta2 = a.next_tx(1);
        let tb1 = b.next_tx(0);
        assert_ne!(ta1.id, ta2.id);
        assert_ne!(ta1.id, tb1.id);
        assert_eq!(a.produced(), 2);
    }

    #[test]
    fn tick_generation_matches_rate_in_the_long_run() {
        let mut f = TxFactory::new(ReplicaId(0), 128);
        let mut total = 0usize;
        // 1000 ticks of 1 ms at 12,345 tx/s ~= 12,345 transactions.
        for i in 0..1000u64 {
            total += f.tick(i * 1_000, 1_000, 12_345.0).len();
        }
        assert!((total as i64 - 12_345).abs() <= 1, "generated {total}");
    }

    #[test]
    fn tick_with_tiny_rate_eventually_emits() {
        let mut f = TxFactory::new(ReplicaId(0), 128);
        let mut total = 0;
        // 0.5 tx/s over 10 seconds of 100 ms ticks => ~5 transactions.
        for i in 0..100u64 {
            total += f.tick(i * 100_000, 100_000, 0.5).len();
        }
        assert_eq!(total, 5);
    }
}
