//! Measurement utilities for the Stratus reproduction.
//!
//! The paper reports three kinds of numbers: throughput (KTx/s), commit
//! latency (ms, measured from first reception at a replica to commit), and
//! outbound bandwidth consumption split by role and message type
//! (Table III).  This crate provides the corresponding accumulators plus
//! the summary/formatting helpers the benchmark harnesses use to print
//! paper-style rows.

pub mod bandwidth;
pub mod histogram;
pub mod json;
pub mod summary;
pub mod throughput;

pub use bandwidth::{bytes_to_mbps, BandwidthBreakdown, RoleBandwidth};
pub use histogram::LatencyHistogram;
pub use json::{JsonError, JsonValue};
pub use summary::RunSummary;
pub use throughput::ThroughputMeter;
