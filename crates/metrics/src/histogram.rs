//! Latency histogram with percentile queries.

use serde::{Deserialize, Serialize};
use smp_types::SimTime;

/// Accumulates latency samples (microseconds) and answers percentile,
/// mean, and extrema queries.
///
/// Samples are stored exactly; percentile queries sort a copy on demand
/// and cache the sorted order until the next insertion.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
    #[serde(skip)]
    sorted: bool,
    sum: u128,
    max: u64,
    min: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            samples: Vec::new(),
            sorted: true,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one latency sample in microseconds.
    pub fn record(&mut self, latency_us: SimTime) {
        self.samples.push(latency_us);
        self.sorted = false;
        self.sum += latency_us as u128;
        self.max = self.max.max(latency_us);
        self.min = self.min.min(latency_us);
    }

    /// Records `count` samples of the same value (useful when a block
    /// commit contributes many identical latencies).
    pub fn record_n(&mut self, latency_us: SimTime, count: usize) {
        for _ in 0..count {
            self.record(latency_us);
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> Option<f64> {
        (!self.is_empty()).then(|| self.sum as f64 / self.samples.len() as f64)
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> Option<f64> {
        self.mean_us().map(|us| us / 1_000.0)
    }

    /// Maximum latency in microseconds.
    pub fn max_us(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Minimum latency in microseconds.
    pub fn min_us(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// The `p`-th percentile (0.0–100.0) in microseconds, using the
    /// nearest-rank method.
    pub fn percentile_us(&mut self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        let idx = rank.saturating_sub(1).min(self.samples.len() - 1);
        Some(self.samples[idx])
    }

    /// The `p`-th percentile in milliseconds.
    pub fn percentile_ms(&mut self, p: f64) -> Option<f64> {
        self.percentile_us(p).map(|us| us as f64 / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_us(), None);
        assert_eq!(h.percentile_us(95.0), None);
        assert_eq!(h.max_us(), None);
    }

    #[test]
    fn mean_and_extrema() {
        let mut h = LatencyHistogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean_us(), Some(20.0));
        assert_eq!(h.min_us(), Some(10));
        assert_eq!(h.max_us(), Some(30));
        assert_eq!(h.mean_ms(), Some(0.02));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile_us(50.0), Some(50));
        assert_eq!(h.percentile_us(95.0), Some(95));
        assert_eq!(h.percentile_us(100.0), Some(100));
        assert_eq!(h.percentile_us(0.0), Some(1));
    }

    #[test]
    fn percentile_after_interleaved_inserts() {
        let mut h = LatencyHistogram::new();
        h.record(50);
        assert_eq!(h.percentile_us(50.0), Some(50));
        h.record(10);
        h.record(90);
        assert_eq!(h.percentile_us(50.0), Some(50));
        assert_eq!(h.percentile_us(99.0), Some(90));
    }

    #[test]
    fn record_n_and_merge() {
        let mut a = LatencyHistogram::new();
        a.record_n(5, 3);
        let mut b = LatencyHistogram::new();
        b.record(15);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max_us(), Some(15));
        assert_eq!(a.mean_us(), Some(7.5));
    }
}
