//! Latency histogram with percentile queries.

use serde::{Deserialize, Serialize};
use smp_types::SimTime;

/// Accumulates latency samples (microseconds) and answers percentile,
/// mean, and extrema queries.
///
/// Samples are stored run-length encoded — `(value, repeat-count)` pairs —
/// so recording a block commit that contributes thousands of identical
/// latencies ([`record_n`](Self::record_n)) is O(1) instead of one push
/// per transaction.  Percentile queries sort the runs on demand and cache
/// the sorted order until the next out-of-order insertion; monotone
/// streams (the common case inside one simulation) never trigger a sort.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// `(value_us, run_length)` pairs, coalesced with the tail on insert.
    runs: Vec<(u64, u64)>,
    /// Total number of samples across all runs.
    count: u64,
    #[serde(skip)]
    sorted: bool,
    sum: u128,
    max: u64,
    min: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            runs: Vec::new(),
            count: 0,
            sorted: true,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one latency sample in microseconds.
    pub fn record(&mut self, latency_us: SimTime) {
        self.record_n(latency_us, 1);
    }

    /// Records `count` samples of the same value (useful when a block
    /// commit contributes many identical latencies).  O(1): the samples
    /// are stored as a single run.
    pub fn record_n(&mut self, latency_us: SimTime, count: usize) {
        if count == 0 {
            return;
        }
        let c = count as u64;
        match self.runs.last_mut() {
            Some((value, run)) if *value == latency_us => *run += c,
            last => {
                // Appending a value >= the current tail keeps any sorted
                // order valid, so monotone streams stay sort-free.
                if self.sorted && last.is_some_and(|(value, _)| *value > latency_us) {
                    self.sorted = false;
                }
                self.runs.push((latency_us, c));
            }
        }
        self.count += c;
        self.sum += latency_us as u128 * c as u128;
        self.max = self.max.max(latency_us);
        self.min = self.min.min(latency_us);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        self.runs.extend_from_slice(&other.runs);
        self.sorted = false;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> Option<f64> {
        (!self.is_empty()).then(|| self.sum as f64 / self.count as f64)
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> Option<f64> {
        self.mean_us().map(|us| us / 1_000.0)
    }

    /// Maximum latency in microseconds.
    pub fn max_us(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Minimum latency in microseconds.
    pub fn min_us(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// The `p`-th percentile (0.0–100.0) in microseconds, using the
    /// nearest-rank method.
    pub fn percentile_us(&mut self, p: f64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        if !self.sorted {
            self.runs.sort_unstable_by_key(|(value, _)| *value);
            // Coalesce equal-valued runs so repeated sorts stay cheap.
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.runs.len());
            for (value, run) in self.runs.drain(..) {
                match merged.last_mut() {
                    Some((v, r)) if *v == value => *r += run,
                    _ => merged.push((value, run)),
                }
            }
            self.runs = merged;
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let target = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (value, run) in &self.runs {
            seen += run;
            if seen >= target {
                return Some(*value);
            }
        }
        // Unreachable: the cumulative count covers `target <= count`.
        self.runs.last().map(|(value, _)| *value)
    }

    /// The `p`-th percentile in milliseconds.
    pub fn percentile_ms(&mut self, p: f64) -> Option<f64> {
        self.percentile_us(p).map(|us| us as f64 / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_us(), None);
        assert_eq!(h.percentile_us(95.0), None);
        assert_eq!(h.max_us(), None);
        assert_eq!(h.min_us(), None);
    }

    #[test]
    fn mean_and_extrema() {
        let mut h = LatencyHistogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean_us(), Some(20.0));
        assert_eq!(h.min_us(), Some(10));
        assert_eq!(h.max_us(), Some(30));
        assert_eq!(h.mean_ms(), Some(0.02));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile_us(50.0), Some(50));
        assert_eq!(h.percentile_us(95.0), Some(95));
        assert_eq!(h.percentile_us(100.0), Some(100));
        assert_eq!(h.percentile_us(0.0), Some(1));
    }

    #[test]
    fn percentile_after_interleaved_inserts() {
        let mut h = LatencyHistogram::new();
        h.record(50);
        assert_eq!(h.percentile_us(50.0), Some(50));
        h.record(10);
        h.record(90);
        assert_eq!(h.percentile_us(50.0), Some(50));
        assert_eq!(h.percentile_us(99.0), Some(90));
    }

    #[test]
    fn record_n_and_merge() {
        let mut a = LatencyHistogram::new();
        a.record_n(5, 3);
        let mut b = LatencyHistogram::new();
        b.record(15);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max_us(), Some(15));
        assert_eq!(a.mean_us(), Some(7.5));
    }

    #[test]
    fn single_sample_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile_us(p), Some(42), "p={p}");
        }
        assert_eq!(h.mean_us(), Some(42.0));
        assert_eq!(h.min_us(), Some(42));
        assert_eq!(h.max_us(), Some(42));
    }

    #[test]
    fn merge_with_empty_histograms() {
        let mut a = LatencyHistogram::new();
        a.record(10);
        let empty = LatencyHistogram::new();
        a.merge(&empty); // rhs empty: no-op
        assert_eq!(a.count(), 1);
        assert_eq!(a.min_us(), Some(10));

        let mut b = LatencyHistogram::new();
        b.merge(&a); // lhs empty: adopts rhs
        assert_eq!(b.count(), 1);
        assert_eq!(b.min_us(), Some(10));
        assert_eq!(b.max_us(), Some(10));
        assert_eq!(b.percentile_us(50.0), Some(10));

        let mut both = LatencyHistogram::new();
        both.merge(&LatencyHistogram::new()); // both empty
        assert!(both.is_empty());
        assert_eq!(both.percentile_us(50.0), None);
    }

    #[test]
    fn merge_disjoint_ranges() {
        let mut low = LatencyHistogram::new();
        for v in 1..=50u64 {
            low.record(v);
        }
        let mut high = LatencyHistogram::new();
        for v in 51..=100u64 {
            high.record(v);
        }
        // Merge the higher range into the lower one; percentiles must see
        // the union, not either half.
        low.merge(&high);
        assert_eq!(low.count(), 100);
        assert_eq!(low.min_us(), Some(1));
        assert_eq!(low.max_us(), Some(100));
        assert_eq!(low.percentile_us(50.0), Some(50));
        assert_eq!(low.percentile_us(95.0), Some(95));
        assert_eq!(low.mean_us(), Some(50.5));
    }

    #[test]
    fn record_n_is_a_single_run() {
        let mut h = LatencyHistogram::new();
        h.record_n(7, 1_000_000);
        h.record_n(7, 500_000); // coalesces with the tail run
        assert_eq!(h.runs.len(), 1);
        assert_eq!(h.count(), 1_500_000);
        assert_eq!(h.percentile_us(50.0), Some(7));
        assert_eq!(h.percentile_us(100.0), Some(7));
        h.record_n(3, 0); // zero-count is a no-op
        assert_eq!(h.count(), 1_500_000);
    }

    #[test]
    fn run_length_percentiles_match_per_sample_recording() {
        let mut bulk = LatencyHistogram::new();
        let mut single = LatencyHistogram::new();
        for (value, n) in [(30u64, 5usize), (10, 2), (20, 8), (10, 1)] {
            bulk.record_n(value, n);
            for _ in 0..n {
                single.record(value);
            }
        }
        for p in [0.0, 12.5, 50.0, 90.0, 95.0, 99.0, 100.0] {
            assert_eq!(bulk.percentile_us(p), single.percentile_us(p), "p={p}");
        }
        assert_eq!(bulk.mean_us(), single.mean_us());
        assert_eq!(bulk.count(), single.count());
    }

    #[test]
    fn monotone_streams_stay_sorted_across_queries() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record_n(20, 3);
        assert!(h.sorted);
        assert_eq!(h.percentile_us(100.0), Some(20));
        h.record(20); // equal to tail: still sorted
        h.record(30);
        assert!(h.sorted);
        h.record(5); // out of order: needs a sort on next query
        assert!(!h.sorted);
        assert_eq!(h.percentile_us(0.0), Some(5));
        assert!(h.sorted);
    }
}
