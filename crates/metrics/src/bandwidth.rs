//! Outbound bandwidth accounting (Table III).
//!
//! The paper reports outbound bandwidth consumption, in Mb/s, split by
//! role (leader vs. non-leader) and by message kind (proposals,
//! microblocks, votes, acks).  [`BandwidthBreakdown`] converts raw
//! per-kind byte counters into those rows.

use serde::Serialize;
use smp_types::{SimTime, MICROS_PER_SEC};
use std::collections::{BTreeMap, HashMap};

/// Bandwidth consumption of one role, split by message kind.
#[derive(Clone, Debug, Default, Serialize)]
pub struct RoleBandwidth {
    /// Mb/s per message kind.
    pub mbps_by_kind: BTreeMap<String, f64>,
}

impl RoleBandwidth {
    /// Total Mb/s across every message kind.
    pub fn total_mbps(&self) -> f64 {
        self.mbps_by_kind.values().sum()
    }

    /// Mb/s for one message kind (0.0 if absent).
    pub fn mbps(&self, kind: &str) -> f64 {
        self.mbps_by_kind.get(kind).copied().unwrap_or(0.0)
    }
}

/// A leader / non-leader bandwidth breakdown over a measurement window.
#[derive(Clone, Debug, Default, Serialize)]
pub struct BandwidthBreakdown {
    /// Outbound bandwidth of the (average) leader replica.
    pub leader: RoleBandwidth,
    /// Outbound bandwidth of the average non-leader replica.
    pub non_leader: RoleBandwidth,
}

/// Converts a byte count over a window into Mb/s.
pub fn bytes_to_mbps(bytes: u64, window: SimTime) -> f64 {
    if window == 0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / 1_000_000.0 * MICROS_PER_SEC as f64 / window as f64
}

impl BandwidthBreakdown {
    /// Builds a breakdown from per-kind outbound byte counters.
    ///
    /// * `leader_bytes` — bytes sent by replicas while acting as leader
    ///   (averaged over `leader_count` replicas);
    /// * `non_leader_bytes` — bytes sent by the remaining replicas
    ///   (averaged over `non_leader_count`);
    /// * `window` — measurement window in simulated microseconds.
    pub fn from_bytes(
        leader_bytes: &HashMap<&'static str, u64>,
        leader_count: usize,
        non_leader_bytes: &HashMap<&'static str, u64>,
        non_leader_count: usize,
        window: SimTime,
    ) -> Self {
        let to_role = |bytes: &HashMap<&'static str, u64>, count: usize| {
            let mut role = RoleBandwidth::default();
            for (kind, b) in bytes {
                let per_replica = if count == 0 { 0 } else { b / count as u64 };
                role.mbps_by_kind
                    .insert((*kind).to_string(), bytes_to_mbps(per_replica, window));
            }
            role
        };
        BandwidthBreakdown {
            leader: to_role(leader_bytes, leader_count),
            non_leader: to_role(non_leader_bytes, non_leader_count),
        }
    }

    /// Formats the breakdown as paper-style table rows.
    pub fn rows(&self) -> Vec<(String, String, f64)> {
        let mut out = Vec::new();
        for (kind, mbps) in &self.leader.mbps_by_kind {
            out.push(("leader".to_string(), kind.clone(), *mbps));
        }
        out.push((
            "leader".to_string(),
            "SUM".to_string(),
            self.leader.total_mbps(),
        ));
        for (kind, mbps) in &self.non_leader.mbps_by_kind {
            out.push(("non-leader".to_string(), kind.clone(), *mbps));
        }
        out.push((
            "non-leader".to_string(),
            "SUM".to_string(),
            self.non_leader.total_mbps(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_to_mbps_conversion() {
        // 12.5 MB over 1 s = 100 Mb/s.
        assert!((bytes_to_mbps(12_500_000, MICROS_PER_SEC) - 100.0).abs() < 1e-9);
        // Zero window is guarded.
        assert_eq!(bytes_to_mbps(1_000, 0), 0.0);
    }

    #[test]
    fn breakdown_averages_per_replica() {
        let mut leader = HashMap::new();
        leader.insert("proposal", 25_000_000u64);
        let mut non_leader = HashMap::new();
        non_leader.insert("microblock", 12_500_000u64 * 3);
        let b = BandwidthBreakdown::from_bytes(&leader, 2, &non_leader, 3, MICROS_PER_SEC);
        // 25 MB over two leaders => 12.5 MB each => 100 Mb/s.
        assert!((b.leader.mbps("proposal") - 100.0).abs() < 1e-9);
        // 37.5 MB over three non-leaders => 12.5 MB each => 100 Mb/s.
        assert!((b.non_leader.mbps("microblock") - 100.0).abs() < 1e-9);
        assert!((b.leader.total_mbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rows_include_sums() {
        let mut leader = HashMap::new();
        leader.insert("proposal", 1_000_000u64);
        leader.insert("vote", 500_000u64);
        let non_leader = HashMap::new();
        let b = BandwidthBreakdown::from_bytes(&leader, 1, &non_leader, 1, MICROS_PER_SEC);
        let rows = b.rows();
        assert!(rows
            .iter()
            .any(|(role, kind, _)| role == "leader" && kind == "SUM"));
        assert!(rows
            .iter()
            .any(|(role, kind, _)| role == "non-leader" && kind == "SUM"));
    }

    #[test]
    fn missing_kind_reports_zero() {
        let b = BandwidthBreakdown::default();
        assert_eq!(b.leader.mbps("proposal"), 0.0);
        assert_eq!(b.leader.total_mbps(), 0.0);
    }
}
