//! Per-run summaries: the numbers a single experiment point reports.

use crate::bandwidth::{BandwidthBreakdown, RoleBandwidth};
use crate::json::{JsonError, JsonValue};
use crate::throughput::ThroughputMeter;
use crate::LatencyHistogram;
use serde::Serialize;
use smp_types::SimTime;

/// The outcome of one experiment run (one point in a paper figure).
#[derive(Clone, Debug, Default, Serialize)]
pub struct RunSummary {
    /// Human-readable label of the protocol/config (e.g. `"S-HS"`).
    pub label: String,
    /// Number of replicas.
    pub n: usize,
    /// Measurement window length (microseconds).
    pub window_us: SimTime,
    /// Committed throughput in KTx/s.
    pub throughput_ktps: f64,
    /// Mean commit latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median commit latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 95th-percentile commit latency in milliseconds.
    pub p95_latency_ms: f64,
    /// 99th-percentile commit latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Number of view changes observed during the window.
    pub view_changes: u64,
    /// Total transactions committed in the window.
    pub committed_txs: u64,
    /// Optional bandwidth breakdown (Table III runs).
    pub bandwidth: Option<BandwidthBreakdown>,
}

impl RunSummary {
    /// Builds a summary from raw accumulators over the window
    /// `[from, to)`.
    pub fn from_measurements(
        label: impl Into<String>,
        n: usize,
        throughput: &ThroughputMeter,
        latency: &mut LatencyHistogram,
        view_changes: u64,
        from: SimTime,
        to: SimTime,
    ) -> Self {
        RunSummary {
            label: label.into(),
            n,
            window_us: to.saturating_sub(from),
            throughput_ktps: throughput.ktps_in(from, to),
            mean_latency_ms: latency.mean_ms().unwrap_or(0.0),
            p50_latency_ms: latency.percentile_ms(50.0).unwrap_or(0.0),
            p95_latency_ms: latency.percentile_ms(95.0).unwrap_or(0.0),
            p99_latency_ms: latency.percentile_ms(99.0).unwrap_or(0.0),
            view_changes,
            committed_txs: throughput.total_in(from, to),
            bandwidth: None,
        }
    }

    /// Attaches a bandwidth breakdown.
    pub fn with_bandwidth(mut self, bandwidth: BandwidthBreakdown) -> Self {
        self.bandwidth = Some(bandwidth);
        self
    }

    /// Serializes the summary as a [`JsonValue`] object (the shape used
    /// inside `BENCH_*.json` artifacts).
    pub fn to_json(&self) -> JsonValue {
        let role_json = |role: &RoleBandwidth| {
            JsonValue::Object(
                role.mbps_by_kind
                    .iter()
                    .map(|(kind, mbps)| (kind.clone(), JsonValue::Number(*mbps)))
                    .collect(),
            )
        };
        let mut pairs = vec![
            ("label".to_string(), JsonValue::String(self.label.clone())),
            ("n".to_string(), JsonValue::Number(self.n as f64)),
            (
                "window_us".to_string(),
                JsonValue::Number(self.window_us as f64),
            ),
            (
                "throughput_ktps".to_string(),
                JsonValue::Number(self.throughput_ktps),
            ),
            (
                "mean_latency_ms".to_string(),
                JsonValue::Number(self.mean_latency_ms),
            ),
            (
                "p50_latency_ms".to_string(),
                JsonValue::Number(self.p50_latency_ms),
            ),
            (
                "p95_latency_ms".to_string(),
                JsonValue::Number(self.p95_latency_ms),
            ),
            (
                "p99_latency_ms".to_string(),
                JsonValue::Number(self.p99_latency_ms),
            ),
            (
                "view_changes".to_string(),
                JsonValue::Number(self.view_changes as f64),
            ),
            (
                "committed_txs".to_string(),
                JsonValue::Number(self.committed_txs as f64),
            ),
        ];
        if let Some(bw) = &self.bandwidth {
            pairs.push((
                "bandwidth".to_string(),
                JsonValue::Object(vec![
                    ("leader".to_string(), role_json(&bw.leader)),
                    ("non_leader".to_string(), role_json(&bw.non_leader)),
                ]),
            ));
        }
        JsonValue::Object(pairs)
    }

    /// Reconstructs a summary from the object shape [`to_json`](Self::to_json)
    /// emits.  Missing numeric fields default to zero.
    pub fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let field = |key: &str| value.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let role_from = |value: Option<&JsonValue>| {
            let mut role = RoleBandwidth::default();
            if let Some(pairs) = value.and_then(JsonValue::as_object) {
                for (kind, mbps) in pairs {
                    if let Some(mbps) = mbps.as_f64() {
                        role.mbps_by_kind.insert(kind.clone(), mbps);
                    }
                }
            }
            role
        };
        Ok(RunSummary {
            label: value
                .get("label")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            n: field("n") as usize,
            window_us: field("window_us") as SimTime,
            throughput_ktps: field("throughput_ktps"),
            mean_latency_ms: field("mean_latency_ms"),
            p50_latency_ms: field("p50_latency_ms"),
            p95_latency_ms: field("p95_latency_ms"),
            p99_latency_ms: field("p99_latency_ms"),
            view_changes: field("view_changes") as u64,
            committed_txs: field("committed_txs") as u64,
            bandwidth: value.get("bandwidth").map(|bw| BandwidthBreakdown {
                leader: role_from(bw.get("leader")),
                non_leader: role_from(bw.get("non_leader")),
            }),
        })
    }

    /// One-line, figure-style rendering:
    /// `label  n=..  thr=..KTx/s  lat=..ms (p95=..)  vc=..`.
    pub fn to_row(&self) -> String {
        format!(
            "{:<14} n={:<4} thr={:>9.2} KTx/s  lat={:>9.1} ms (p50={:.1} p95={:.1} p99={:.1})  vc={}",
            self.label,
            self.n,
            self.throughput_ktps,
            self.mean_latency_ms,
            self.p50_latency_ms,
            self.p95_latency_ms,
            self.p99_latency_ms,
            self.view_changes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_types::MICROS_PER_SEC;

    #[test]
    fn summary_computes_rates_and_percentiles() {
        let mut tput = ThroughputMeter::new();
        tput.record(500_000, 30_000);
        let mut lat = LatencyHistogram::new();
        for v in [1_000, 2_000, 3_000, 100_000] {
            lat.record(v);
        }
        let s = RunSummary::from_measurements("S-HS", 64, &tput, &mut lat, 2, 0, MICROS_PER_SEC);
        assert_eq!(s.committed_txs, 30_000);
        assert!((s.throughput_ktps - 30.0).abs() < 1e-9);
        assert!(s.p99_latency_ms >= s.p50_latency_ms);
        assert_eq!(s.view_changes, 2);
        assert!(s.to_row().contains("S-HS"));
    }

    #[test]
    fn empty_measurements_produce_zeroes() {
        let tput = ThroughputMeter::new();
        let mut lat = LatencyHistogram::new();
        let s = RunSummary::from_measurements("x", 4, &tput, &mut lat, 0, 0, MICROS_PER_SEC);
        assert_eq!(s.throughput_ktps, 0.0);
        assert_eq!(s.mean_latency_ms, 0.0);
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut tput = ThroughputMeter::new();
        tput.record(500_000, 30_000);
        let mut lat = LatencyHistogram::new();
        for v in [1_000, 2_000, 3_000, 100_000] {
            lat.record(v);
        }
        let mut leader = std::collections::HashMap::new();
        leader.insert("proposal", 12_500_000u64);
        let non_leader = std::collections::HashMap::new();
        let s = RunSummary::from_measurements("S-HS", 64, &tput, &mut lat, 2, 0, MICROS_PER_SEC)
            .with_bandwidth(BandwidthBreakdown::from_bytes(
                &leader,
                1,
                &non_leader,
                63,
                MICROS_PER_SEC,
            ));
        let text = s.to_json().to_pretty();
        let back = RunSummary::from_json(&crate::json::JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back.label, s.label);
        assert_eq!(back.n, s.n);
        assert_eq!(back.window_us, s.window_us);
        assert_eq!(back.throughput_ktps, s.throughput_ktps);
        assert_eq!(back.mean_latency_ms, s.mean_latency_ms);
        assert_eq!(back.p50_latency_ms, s.p50_latency_ms);
        assert_eq!(back.p95_latency_ms, s.p95_latency_ms);
        assert_eq!(back.p99_latency_ms, s.p99_latency_ms);
        assert_eq!(back.view_changes, s.view_changes);
        assert_eq!(back.committed_txs, s.committed_txs);
        let bw = back.bandwidth.as_ref().unwrap();
        assert_eq!(
            bw.leader.mbps("proposal"),
            s.bandwidth.as_ref().unwrap().leader.mbps("proposal")
        );
        assert!(bw.non_leader.mbps_by_kind.is_empty());
    }

    #[test]
    fn json_round_trip_without_bandwidth() {
        let tput = ThroughputMeter::new();
        let mut lat = LatencyHistogram::new();
        let s = RunSummary::from_measurements("x", 4, &tput, &mut lat, 0, 0, MICROS_PER_SEC);
        let back = RunSummary::from_json(
            &crate::json::JsonValue::parse(&s.to_json().to_compact()).unwrap(),
        )
        .unwrap();
        assert_eq!(back.label, "x");
        assert!(back.bandwidth.is_none());
    }

    #[test]
    fn with_bandwidth_attaches() {
        let tput = ThroughputMeter::new();
        let mut lat = LatencyHistogram::new();
        let s = RunSummary::from_measurements("x", 4, &tput, &mut lat, 0, 0, 1)
            .with_bandwidth(BandwidthBreakdown::default());
        assert!(s.bandwidth.is_some());
    }
}
