//! Per-run summaries: the numbers a single experiment point reports.

use crate::bandwidth::BandwidthBreakdown;
use crate::histogram::LatencyHistogram;
use crate::throughput::ThroughputMeter;
use serde::Serialize;
use smp_types::SimTime;

/// The outcome of one experiment run (one point in a paper figure).
#[derive(Clone, Debug, Default, Serialize)]
pub struct RunSummary {
    /// Human-readable label of the protocol/config (e.g. `"S-HS"`).
    pub label: String,
    /// Number of replicas.
    pub n: usize,
    /// Measurement window length (microseconds).
    pub window_us: SimTime,
    /// Committed throughput in KTx/s.
    pub throughput_ktps: f64,
    /// Mean commit latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median commit latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 95th-percentile commit latency in milliseconds.
    pub p95_latency_ms: f64,
    /// 99th-percentile commit latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Number of view changes observed during the window.
    pub view_changes: u64,
    /// Total transactions committed in the window.
    pub committed_txs: u64,
    /// Optional bandwidth breakdown (Table III runs).
    pub bandwidth: Option<BandwidthBreakdown>,
}

impl RunSummary {
    /// Builds a summary from raw accumulators over the window
    /// `[from, to)`.
    pub fn from_measurements(
        label: impl Into<String>,
        n: usize,
        throughput: &ThroughputMeter,
        latency: &mut LatencyHistogram,
        view_changes: u64,
        from: SimTime,
        to: SimTime,
    ) -> Self {
        RunSummary {
            label: label.into(),
            n,
            window_us: to.saturating_sub(from),
            throughput_ktps: throughput.ktps_in(from, to),
            mean_latency_ms: latency.mean_ms().unwrap_or(0.0),
            p50_latency_ms: latency.percentile_ms(50.0).unwrap_or(0.0),
            p95_latency_ms: latency.percentile_ms(95.0).unwrap_or(0.0),
            p99_latency_ms: latency.percentile_ms(99.0).unwrap_or(0.0),
            view_changes,
            committed_txs: throughput.total_in(from, to),
            bandwidth: None,
        }
    }

    /// Attaches a bandwidth breakdown.
    pub fn with_bandwidth(mut self, bandwidth: BandwidthBreakdown) -> Self {
        self.bandwidth = Some(bandwidth);
        self
    }

    /// One-line, figure-style rendering:
    /// `label  n=..  thr=..KTx/s  lat=..ms (p95=..)  vc=..`.
    pub fn to_row(&self) -> String {
        format!(
            "{:<14} n={:<4} thr={:>9.2} KTx/s  lat={:>9.1} ms (p50={:.1} p95={:.1} p99={:.1})  vc={}",
            self.label,
            self.n,
            self.throughput_ktps,
            self.mean_latency_ms,
            self.p50_latency_ms,
            self.p95_latency_ms,
            self.p99_latency_ms,
            self.view_changes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_types::MICROS_PER_SEC;

    #[test]
    fn summary_computes_rates_and_percentiles() {
        let mut tput = ThroughputMeter::new();
        tput.record(500_000, 30_000);
        let mut lat = LatencyHistogram::new();
        for v in [1_000, 2_000, 3_000, 100_000] {
            lat.record(v);
        }
        let s = RunSummary::from_measurements("S-HS", 64, &tput, &mut lat, 2, 0, MICROS_PER_SEC);
        assert_eq!(s.committed_txs, 30_000);
        assert!((s.throughput_ktps - 30.0).abs() < 1e-9);
        assert!(s.p99_latency_ms >= s.p50_latency_ms);
        assert_eq!(s.view_changes, 2);
        assert!(s.to_row().contains("S-HS"));
    }

    #[test]
    fn empty_measurements_produce_zeroes() {
        let tput = ThroughputMeter::new();
        let mut lat = LatencyHistogram::new();
        let s = RunSummary::from_measurements("x", 4, &tput, &mut lat, 0, 0, MICROS_PER_SEC);
        assert_eq!(s.throughput_ktps, 0.0);
        assert_eq!(s.mean_latency_ms, 0.0);
    }

    #[test]
    fn with_bandwidth_attaches() {
        let tput = ThroughputMeter::new();
        let mut lat = LatencyHistogram::new();
        let s = RunSummary::from_measurements("x", 4, &tput, &mut lat, 0, 0, 1)
            .with_bandwidth(BandwidthBreakdown::default());
        assert!(s.bandwidth.is_some());
    }
}
