//! Throughput measurement.

use serde::{Deserialize, Serialize};
use smp_types::{SimTime, MICROS_PER_SEC};

/// Counts committed transactions over simulated time and converts them to
/// transactions-per-second figures, optionally excluding a warm-up prefix.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ThroughputMeter {
    events: Vec<(SimTime, u64)>,
    total: u64,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        ThroughputMeter {
            events: Vec::new(),
            total: 0,
        }
    }

    /// Records `count` transactions committed at `time`.
    pub fn record(&mut self, time: SimTime, count: u64) {
        if count == 0 {
            return;
        }
        self.events.push((time, count));
        self.total += count;
    }

    /// Total transactions recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Transactions committed in the window `[from, to)`.
    pub fn total_in(&self, from: SimTime, to: SimTime) -> u64 {
        self.events
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Average throughput (tx/s) over the window `[from, to)`.
    pub fn tps_in(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let txs = self.total_in(from, to);
        txs as f64 * MICROS_PER_SEC as f64 / (to - from) as f64
    }

    /// Average throughput (KTx/s) over the window `[from, to)` — the unit
    /// the paper's figures use.
    pub fn ktps_in(&self, from: SimTime, to: SimTime) -> f64 {
        self.tps_in(from, to) / 1_000.0
    }

    /// Per-second throughput series covering `[0, horizon)`.
    pub fn series_tps(&self, bucket: SimTime, horizon: SimTime) -> Vec<f64> {
        assert!(bucket > 0);
        let n = horizon.div_ceil(bucket) as usize;
        let mut counts = vec![0u64; n];
        for (t, c) in &self.events {
            if *t < horizon {
                counts[(*t / bucket) as usize] += *c;
            }
        }
        let scale = MICROS_PER_SEC as f64 / bucket as f64;
        counts.into_iter().map(|c| c as f64 * scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_windows() {
        let mut m = ThroughputMeter::new();
        m.record(100_000, 10);
        m.record(600_000, 20);
        m.record(1_600_000, 40);
        m.record(2_000_000, 0); // ignored
        assert_eq!(m.total(), 70);
        assert_eq!(m.total_in(0, 1_000_000), 30);
        assert_eq!(m.total_in(1_000_000, 2_000_000), 40);
    }

    #[test]
    fn tps_normalizes_by_window_length() {
        let mut m = ThroughputMeter::new();
        m.record(500_000, 50_000);
        // 50K txs over a 1-second window => 50 KTx/s.
        assert!((m.tps_in(0, MICROS_PER_SEC) - 50_000.0).abs() < 1e-9);
        assert!((m.ktps_in(0, MICROS_PER_SEC) - 50.0).abs() < 1e-9);
        // Over 2 seconds the rate halves.
        assert!((m.ktps_in(0, 2 * MICROS_PER_SEC) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_window_is_zero() {
        let mut m = ThroughputMeter::new();
        m.record(10, 5);
        assert_eq!(m.tps_in(100, 100), 0.0);
        assert_eq!(m.tps_in(200, 100), 0.0);
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let mut m = ThroughputMeter::new();
        m.record(1_000_000, 7);
        // `from` is inclusive, `to` is exclusive.
        assert_eq!(m.total_in(1_000_000, 1_000_001), 7);
        assert_eq!(m.total_in(0, 1_000_000), 0);
        assert_eq!(m.total_in(1_000_001, 2_000_000), 0);
    }

    #[test]
    fn series_bucket_boundaries() {
        let mut m = ThroughputMeter::new();
        m.record(0, 1); // first instant of bucket 0
        m.record(999_999, 2); // last instant of bucket 0
        m.record(1_000_000, 4); // first instant of bucket 1
        m.record(2_999_999, 8); // last instant inside the horizon
        m.record(3_000_000, 16); // at the horizon: excluded
        let s = m.series_tps(MICROS_PER_SEC, 3 * MICROS_PER_SEC);
        assert_eq!(s, vec![3.0, 4.0, 8.0]);
        // A horizon that is not a bucket multiple rounds the bucket count up,
        // and the event sitting exactly at 3 s now falls inside it.
        let s = m.series_tps(MICROS_PER_SEC, 3 * MICROS_PER_SEC + 1);
        assert_eq!(s.len(), 4);
        assert_eq!(s[3], 16.0);
    }

    #[test]
    fn series_buckets_events() {
        let mut m = ThroughputMeter::new();
        m.record(100_000, 10);
        m.record(1_200_000, 30);
        let s = m.series_tps(MICROS_PER_SEC, 3 * MICROS_PER_SEC);
        assert_eq!(s, vec![10.0, 30.0, 0.0]);
    }
}
