//! Minimal JSON document model, writer, and parser.
//!
//! The workspace's vendored `serde` is a no-op marker shim, so artifacts
//! that must actually round-trip through JSON — telemetry registry
//! snapshots, chrome-trace dumps, `BENCH_*.json` benchmark records — are
//! built on this small self-contained implementation instead.  Objects
//! preserve insertion order (they are a `Vec` of pairs, not a map), which
//! keeps emitted artifacts diff-stable.

use std::fmt::Write as _;

/// A parsed or under-construction JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// All JSON numbers are held as `f64` (ample for the counters and
    /// metric values this workspace records).
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Key/value pairs in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object built from pairs.
    pub fn object(pairs: Vec<(String, JsonValue)>) -> Self {
        JsonValue::Object(pairs)
    }

    /// Looks up a key in an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.  Returns a human-readable error with the
    /// byte offset on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; degrade to null like serde_json does.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: message plus byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object_body(),
            Some(b'[') => self.array_body(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object_body(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array_body(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with the low half.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at byte.
                    let start = self.pos - 1;
                    let width = utf8_width(byte);
                    let end = start + width;
                    if width == 0 || end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = (byte as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

fn utf8_width(byte: u8) -> usize {
    match byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "\"hi\""] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.to_compact(), text);
        }
    }

    #[test]
    fn round_trips_nested_structure() {
        let v = JsonValue::Object(vec![
            ("name".to_string(), JsonValue::String("fig7".to_string())),
            (
                "points".to_string(),
                JsonValue::Array(vec![
                    JsonValue::Number(1.0),
                    JsonValue::Number(2.5),
                    JsonValue::Null,
                ]),
            ),
            ("ok".to_string(), JsonValue::Bool(true)),
        ]);
        let compact = v.to_compact();
        assert_eq!(
            compact,
            r#"{"name":"fig7","points":[1,2.5,null],"ok":true}"#
        );
        assert_eq!(JsonValue::parse(&compact).unwrap(), v);
        // Pretty output parses back to the same document.
        assert_eq!(JsonValue::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = JsonValue::String("a\"b\\c\nd\te\u{1}".to_string());
        let text = v.to_compact();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
        // Unicode escapes, including a surrogate pair.
        assert_eq!(
            JsonValue::parse(r#""é😀""#).unwrap(),
            JsonValue::String("é😀".to_string())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(
            JsonValue::parse("\"héllo\"").unwrap(),
            JsonValue::String("héllo".to_string())
        );
    }

    #[test]
    fn object_accessors() {
        let v = JsonValue::parse(r#"{"a":1,"b":"x","c":[true],"d":{"e":2}}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(
            v.get("d")
                .and_then(|d| d.get("e"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(text).is_err(), "accepted {text:?}");
        }
        let err = JsonValue::parse("[1,]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(JsonValue::parse("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert_eq!(JsonValue::parse("-2E-2").unwrap().as_f64(), Some(-0.02));
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_compact(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_compact(), "null");
    }
}
