//! Minimal stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API this workspace uses —
//! [`rngs::SmallRng`] (an xoshiro256++ generator), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, and [`seq::SliceRandom`] — with
//! deterministic, portable output. The offline build environment cannot
//! fetch crates.io dependencies, so the real crate is replaced by this
//! shim via a workspace path dependency.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
    /// Builds a generator from system entropy. Deterministic fallback in
    /// this shim: derives the seed from the current process time.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types samplable uniformly over their whole domain via `Rng::gen`.
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample_standard(rng))
    }
}

/// Ranges samplable via `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, bound)` (Lemire-style rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let (hi, lo) = {
            let wide = (r as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Distribution-style re-exports (placeholder namespace for parity with
/// the real crate's module layout).
pub mod distributions {
    pub use super::Standard;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle should permute with overwhelming probability"
        );
    }

    #[test]
    fn uniform_covers_small_domain() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
