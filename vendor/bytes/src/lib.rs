//! Minimal stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply clonable, immutable, reference-counted
//! byte buffer covering the API subset this workspace uses. The offline
//! build environment cannot fetch crates.io dependencies, so the real
//! `bytes` crate is replaced by this shim via a workspace path dependency.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_equality() {
        let a = Bytes::from(b"hello".to_vec());
        let b = Bytes::from_static(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..2], b"he");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_cheap_and_shares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
    }
}
