//! Minimal stand-in for `serde`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! but never serializes through serde at runtime, and the offline build
//! environment cannot fetch the real crate. This shim re-exports no-op
//! derive macros; `use serde::{Serialize, Deserialize}` resolves to them.

pub use serde_derive::{Deserialize, Serialize};
