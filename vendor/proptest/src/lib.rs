//! Minimal stand-in for `proptest`.
//!
//! Supports the subset of the API this workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` and `boxed`,
//! `any::<T>()`, integer-range strategies, tuple strategies, [`Just`],
//! [`prop_oneof!`] unions, [`option::of`], and [`collection::vec`].
//! Cases are generated from fixed seeds, so every run explores the same
//! inputs (no shrinking — a failing case prints its seed index and
//! values via the assertion message instead).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases generated per property.
pub const CASES: u64 = 96;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`] to mix arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Weighted union over type-erased arms, built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("pick is bounded by the weight sum")
    }
}

/// Chooses between strategies, mirroring `proptest::prop_oneof!`. Arms
/// are either bare strategies (equal weight) or `weight => strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((($weight) as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy produced by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Yields `None` roughly a quarter of the time, `Some(inner)`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy for the full domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    T: rand::Standard,
{
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                0
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::ProptestConfig;
    pub use crate::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
/// Only the case count is honoured; set it with
/// `#![proptest_config(ProptestConfig::with_cases(n))]` as the first
/// line of a [`proptest!`] block (expensive properties — e.g. ones that
/// run whole simulations per case — use this to dial down from the
/// default [`CASES`]).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u64) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs `f` once per deterministic case seed, panicking on the first
/// failure with the case index and message.
pub fn run_cases<F>(name: &str, f: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), String>,
{
    run_cases_with(name, CASES, f)
}

/// [`run_cases`] with an explicit case count.
pub fn run_cases_with<F>(name: &str, cases: u64, mut f: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), String>,
{
    for case in 0..cases {
        // Mix the property name into the seed so distinct properties
        // explore distinct inputs.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = SmallRng::seed_from_u64(h ^ case);
        if let Err(msg) = f(&mut rng) {
            panic!("property '{name}' failed at case {case}: {msg}");
        }
    }
}

/// Declares property tests. Each function runs [`CASES`] deterministic
/// cases (or the count from an optional leading
/// `#![proptest_config(..)]`); arguments are bound with
/// `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __proptest_config: $crate::ProptestConfig = $config;
                $crate::run_cases_with(stringify!($name), __proptest_config.cases, |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    #[allow(unreachable_code)]
                    (move || -> ::std::result::Result<(), String> { $body Ok(()) })()
                });
            }
        )*
    };
    ($(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    #[allow(unreachable_code)]
                    (move || -> ::std::result::Result<(), String> { $body Ok(()) })()
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!("assertion failed: {:?} == {:?}", l, r));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!("assertion failed: {:?} != {:?}", l, r));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_limits_cases(x in any::<u64>()) {
            // Deterministic generation: just confirm the body runs.
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #[test]
        fn ranges_respected(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(s in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0);
            prop_assert!(s < 20);
        }

        #[test]
        fn assume_skips(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert_eq!(a, a);
        }

        #[test]
        fn just_yields_its_value(x in Just(41u8).prop_map(|v| v + 1)) {
            prop_assert_eq!(x, 42);
        }

        #[test]
        fn oneof_draws_from_every_arm(x in prop_oneof![Just(1u8), Just(2), 0u8..1]) {
            prop_assert!(x <= 2);
        }

        #[test]
        fn weighted_oneof_respects_zero_weight(
            x in prop_oneof![3 => Just(7u8), 0 => Just(9)],
        ) {
            prop_assert_eq!(x, 7);
        }

        #[test]
        fn inclusive_ranges_respected(x in 250u8..=255) {
            prop_assert!(x >= 250);
        }

        #[test]
        fn option_of_yields_both_variants(
            v in collection::vec(crate::option::of(any::<u8>()), 64..65),
        ) {
            prop_assert!(v.iter().any(|x| x.is_none()));
            prop_assert!(v.iter().any(|x| x.is_some()));
        }
    }
}
