//! Minimal stand-in for `criterion`.
//!
//! Implements the benchmarking API subset this workspace's benches use
//! (`Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`, the
//! `criterion_group!` / `criterion_main!` macros) with a simple
//! wall-clock measurement loop: a short warm-up followed by timed batches,
//! reporting the mean time per iteration. No statistics, plots, or saved
//! baselines — output is one line per benchmark on stdout.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed measurement, retrievable via [`take_reports`].
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Number of measured iterations.
    pub iters: u64,
}

static REPORTS: Mutex<Vec<Report>> = Mutex::new(Vec::new());

/// Drains every report recorded so far (in execution order).  Lets a
/// custom bench `main` export the results after running the groups —
/// real criterion writes its own output files instead.
pub fn take_reports() -> Vec<Report> {
    std::mem::take(&mut REPORTS.lock().expect("reports lock"))
}

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Warm-up time per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(60);

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs closures and measures their execution time.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    ns_per_iter: f64,
    iters_done: u64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly in batches until the
    /// measurement target is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TARGET {
            std_black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        // Measure in growing batches.
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        let mut batch: u64 = 1;
        while total_time < MEASURE_TARGET {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            total_time += start.elapsed();
            total_iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
        self.ns_per_iter = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
        self.iters_done = total_iters;
    }
}

fn report(name: &str, bencher: &Bencher) {
    let ns = bencher.ns_per_iter;
    REPORTS.lock().expect("reports lock").push(Report {
        id: name.to_string(),
        ns_per_iter: ns,
        iters: bencher.iters_done,
    });
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!(
        "{name:<60} time: {value:>10.3} {unit}/iter ({} iters)",
        bencher.iters_done
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API parity; this harness sizes
    /// batches by time instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API parity).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters_done: 0,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Benchmarks `f` with `input` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters_done: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group (no-op; reports are printed eagerly).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters_done: 0,
        };
        f(&mut b);
        report(id, &b);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn reports_are_collected() {
        let mut c = Criterion::default();
        c.bench_function("collected_marker", |b| b.iter(|| 1 + 1));
        let reports = take_reports();
        assert!(reports
            .iter()
            .any(|r| r.id == "collected_marker" && r.iters > 0 && r.ns_per_iter >= 0.0));
    }
}
