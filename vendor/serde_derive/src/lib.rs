//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace derives serde traits purely as markers (nothing
//! serializes through serde at runtime — results are rendered as plain
//! text tables), and the offline build environment cannot fetch the real
//! `serde_derive`. These derives accept the `#[serde(...)]` helper
//! attribute and expand to an empty token stream.

use proc_macro::TokenStream;

/// Derives the marker `Serialize` impl (expands to nothing).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the marker `Deserialize` impl (expands to nothing).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
